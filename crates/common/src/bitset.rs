//! A growable bit set over `u64` blocks.
//!
//! Used for subsets of NFSM states during the powerset construction
//! (Appendix A of the paper) where sets are dense and set-algebra speed
//! dominates. All operations are word-parallel.

/// A fixed-universe bit set (universe size chosen at construction).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitSet {
    blocks: Vec<u64>,
}

impl BitSet {
    /// Creates an empty set able to hold `universe` elements (`0..universe`).
    pub fn new(universe: usize) -> Self {
        BitSet {
            blocks: vec![0; universe.div_ceil(64)],
        }
    }

    /// Number of `u64` blocks backing the set.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Heap bytes consumed by this set.
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        self.blocks.capacity() * 8
    }

    /// Inserts `i`. Panics if `i` is outside the universe.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        self.blocks[i / 64] |= 1u64 << (i % 64);
    }

    /// Removes `i` if present.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        if let Some(b) = self.blocks.get_mut(i / 64) {
            *b &= !(1u64 << (i % 64));
        }
    }

    /// Tests membership of `i`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        self.blocks
            .get(i / 64)
            .is_some_and(|b| b & (1u64 << (i % 64)) != 0)
    }

    /// True if no element is set.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Number of elements in the set.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// `self |= other`. Both sets must share the same universe.
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.blocks.len(), other.blocks.len());
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= *b;
        }
    }

    /// `self &= other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.blocks.len(), other.blocks.len());
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= *b;
        }
    }

    /// `self -= other` (set difference).
    pub fn difference_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.blocks.len(), other.blocks.len());
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= !*b;
        }
    }

    /// True if `self ⊇ other`.
    pub fn is_superset(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.blocks.len(), other.blocks.len());
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & b == *b)
    }

    /// True if the sets share at least one element.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.blocks
            .iter()
            .zip(&other.blocks)
            .any(|(a, b)| a & b != 0)
    }

    /// Iterates set elements in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.blocks
            .iter()
            .enumerate()
            .flat_map(|(bi, &block)| BlockBits { block }.map(move |bit| bi * 64 + bit))
    }

    /// Removes all elements, keeping the universe size.
    pub fn clear(&mut self) {
        self.blocks.fill(0);
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set sized to the largest element.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let universe = items.iter().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(universe);
        for i in items {
            s.insert(i);
        }
        s
    }
}

struct BlockBits {
    block: u64,
}

impl Iterator for BlockBits {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.block == 0 {
            return None;
        }
        let bit = self.block.trailing_zeros() as usize;
        self.block &= self.block - 1;
        Some(bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(200);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(199);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(199));
        assert!(!s.contains(1) && !s.contains(100));
        assert_eq!(s.len(), 4);
        s.remove(63);
        assert!(!s.contains(63));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn iter_ascending() {
        let s: BitSet = [5usize, 1, 130, 64].into_iter().collect();
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![1, 5, 64, 130]);
    }

    #[test]
    fn set_algebra() {
        let a: BitSet = [1usize, 2, 3, 100].into_iter().collect();
        let b: BitSet = [2usize, 3, 4, 100].into_iter().collect();
        // Pad to same universe.
        let mut a2 = BitSet::new(101);
        for i in a.iter() {
            a2.insert(i);
        }
        let mut b2 = BitSet::new(101);
        for i in b.iter() {
            b2.insert(i);
        }
        let mut u = a2.clone();
        u.union_with(&b2);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4, 100]);
        let mut i = a2.clone();
        i.intersect_with(&b2);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2, 3, 100]);
        let mut d = a2.clone();
        d.difference_with(&b2);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1]);
        assert!(u.is_superset(&a2) && u.is_superset(&b2));
        assert!(!a2.is_superset(&b2));
        assert!(a2.intersects(&b2));
    }

    #[test]
    fn superset_and_equality_hash() {
        use std::collections::HashSet;
        let mut seen: HashSet<BitSet> = HashSet::new();
        let a: BitSet = [1usize, 2].into_iter().collect();
        let mut b = BitSet::new(3);
        b.insert(1);
        b.insert(2);
        seen.insert(a);
        assert!(seen.contains(&b));
    }

    #[test]
    fn clear_keeps_universe() {
        let mut s = BitSet::new(130);
        s.insert(129);
        s.clear();
        assert!(s.is_empty());
        s.insert(129);
        assert!(s.contains(129));
    }
}
