//! Shared infrastructure for the `ofw` order-optimization workspace.
//!
//! This crate deliberately contains no order-optimization logic. It provides
//! the performance-oriented substrate the other crates are built on:
//!
//! * [`hash`] — an FxHash implementation and `HashMap`/`HashSet` aliases
//!   using it (the default SipHash is too slow for the hot interning and
//!   memoization paths; see the Rust Performance Book).
//! * [`bitset`] — a growable `u64`-block bit set used for NFSM state
//!   subsets during determinization.
//! * [`bitmatrix`] — a dense 2-D bit matrix used for the precomputed
//!   `contains` table (DFSM state × interesting order).
//! * [`interner`] — a generic value interner handing out dense `u32`
//!   handles so hot-path comparisons are integer comparisons.
//! * [`smallset`] — a bit set with a single inline word that spills to
//!   the heap past 64 elements (per-plan-node applied-FD masks).
//! * [`mem`] — a byte-accurate, thread-shareable memory meter used to
//!   reproduce the paper's memory-consumption experiments (Fig. 14).
//! * [`exec`] — the ordered chunk-execution seam ([`OrderedExecutor`])
//!   between the DP drivers and the `ofw-parallel` thread pool, plus the
//!   deterministic block partitioner [`chunk_ranges`] and the
//!   thread-count-independent morsel partitioner [`morsel_ranges`].
//! * [`alloc`] (feature `count-allocs`) — a counting global allocator
//!   so benchmark binaries can report allocation pressure as a
//!   deterministic, trend-gated `allocs` column.

#[cfg(feature = "count-allocs")]
pub mod alloc;
pub mod bitmatrix;
pub mod bitset;
pub mod exec;
pub mod hash;
pub mod interner;
pub mod mem;
pub mod smallset;

pub use bitmatrix::BitMatrix;
pub use bitset::BitSet;
pub use exec::{chunk_ranges, morsel_ranges, OrderedExecutor, SerialExecutor};
pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use interner::Interner;
pub use mem::MemoryMeter;
pub use smallset::SmallBitSet;
