//! Ordered chunk execution — the seam between the DP drivers and the
//! thread pool.
//!
//! The plan generator's size-layered DP hands each layer to an
//! [`OrderedExecutor`]: "run `f(0), f(1), …, f(n-1)` and give me the
//! results *in index order*". How the indices are scheduled is the
//! executor's business — [`SerialExecutor`] runs them inline in order,
//! the `ofw-parallel` work-stealing pool runs them on worker threads —
//! but because results always come back in index order, the caller's
//! behavior is independent of the schedule. That is the whole
//! determinism story of the parallel DP: scheduling freedom below the
//! seam, a fixed merge order above it.

use std::ops::Range;

/// Executes `n` independent tasks and returns their results in index
/// order, regardless of execution order.
pub trait OrderedExecutor {
    /// Runs `f(i)` exactly once for every `i in 0..n`; `results[i]`
    /// holds the value of `f(i)`.
    fn run_ordered<R: Send>(&self, n: usize, f: &(dyn Fn(usize) -> R + Sync)) -> Vec<R>;

    /// How many OS threads the executor may use (1 for serial).
    fn thread_count(&self) -> usize {
        1
    }

    /// Short name for traces and diagnostics (`"serial"`, `"pool"`).
    fn label(&self) -> &'static str {
        "serial"
    }
}

/// The trivial executor: runs every task inline, in index order.
#[derive(Clone, Copy, Debug, Default)]
pub struct SerialExecutor;

impl OrderedExecutor for SerialExecutor {
    fn run_ordered<R: Send>(&self, n: usize, f: &(dyn Fn(usize) -> R + Sync)) -> Vec<R> {
        (0..n).map(f).collect()
    }
}

/// Splits `0..len` into at most `parts` contiguous, balanced, non-empty
/// ranges (fewer when `len < parts`). The first `len % parts` ranges are
/// one element longer — the classic block partition, fully deterministic.
pub fn chunk_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    assert!(parts > 0, "cannot chunk into zero parts");
    let parts = parts.min(len);
    let mut out = Vec::with_capacity(parts);
    if len == 0 {
        return out;
    }
    let base = len / parts;
    let extra = len % parts;
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    out
}

/// Splits `0..len` into fixed-size morsels of `morsel` rows (the last
/// one shorter). Unlike [`chunk_ranges`], the partition depends only on
/// `len` — never on the thread count — which is the first half of the
/// executor's determinism contract: identical morsel boundaries at 1, 2
/// or 8 threads (the second half is merging morsel results in index
/// order via [`OrderedExecutor::run_ordered`]).
pub fn morsel_ranges(len: usize, morsel: usize) -> Vec<Range<usize>> {
    assert!(morsel > 0, "morsel size must be positive");
    let mut out = Vec::with_capacity(len.div_ceil(morsel));
    let mut start = 0;
    while start < len {
        let end = (start + morsel).min(len);
        out.push(start..end);
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_executor_preserves_index_order() {
        let r = SerialExecutor.run_ordered(5, &|i| i * 10);
        assert_eq!(r, vec![0, 10, 20, 30, 40]);
        assert_eq!(SerialExecutor.thread_count(), 1);
        assert_eq!(SerialExecutor.label(), "serial");
    }

    #[test]
    fn empty_run_is_empty() {
        let r: Vec<usize> = SerialExecutor.run_ordered(0, &|i| i);
        assert!(r.is_empty());
    }

    #[test]
    fn chunk_ranges_cover_exactly_once() {
        for len in 0..40 {
            for parts in 1..10 {
                let ranges = chunk_ranges(len, parts);
                let flat: Vec<usize> = ranges.iter().cloned().flatten().collect();
                let expect: Vec<usize> = (0..len).collect();
                assert_eq!(flat, expect, "len={len} parts={parts}");
                assert!(ranges.iter().all(|r| !r.is_empty()));
                assert!(ranges.len() <= parts);
            }
        }
    }

    #[test]
    fn chunk_ranges_are_balanced() {
        let ranges = chunk_ranges(10, 4);
        let sizes: Vec<usize> = ranges.iter().map(std::ops::Range::len).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
    }

    #[test]
    fn morsel_ranges_are_fixed_size_and_cover_exactly_once() {
        for len in 0..50 {
            for morsel in 1..8 {
                let ranges = morsel_ranges(len, morsel);
                let flat: Vec<usize> = ranges.iter().cloned().flatten().collect();
                let expect: Vec<usize> = (0..len).collect();
                assert_eq!(flat, expect, "len={len} morsel={morsel}");
                // Every morsel but the last is exactly `morsel` rows —
                // the partition never depends on a thread count.
                for r in ranges.iter().take(ranges.len().saturating_sub(1)) {
                    assert_eq!(r.len(), morsel);
                }
            }
        }
        assert!(morsel_ranges(0, 4).is_empty());
    }
}
