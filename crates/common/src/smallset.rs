//! A bit set optimized for the "almost always ≤ 64 elements" case.
//!
//! The plan generator tags every plan node with the set of FD sets
//! applied beneath it. Queries have one FD set per predicate, so the set
//! is nearly always ≤ 64 wide — but a 70-relation chain has 69 join
//! predicates, and the DP must not fall over there. [`SmallBitSet`]
//! stores indices `< 64` inline in a single `u64` (no heap, `Copy`-cheap
//! clone) and transparently spills to a boxed word slice for wider
//! universes, so the common case costs exactly what the old raw-`u64`
//! mask did.

/// A growable bit set: one inline word, spilling to the heap past 64.
#[derive(Clone)]
pub enum SmallBitSet {
    /// Indices 0..64, inline.
    Inline(u64),
    /// Arbitrary width; `words[i]` holds indices `64i..64(i+1)`.
    /// Trailing words may be zero — equality compares logical contents,
    /// not representations.
    Spill(Box<[u64]>),
}

impl PartialEq for SmallBitSet {
    fn eq(&self, other: &Self) -> bool {
        let (a, b) = (self.words(), other.words());
        let n = a.len().max(b.len());
        (0..n).all(|i| a.get(i).copied().unwrap_or(0) == b.get(i).copied().unwrap_or(0))
    }
}

impl Eq for SmallBitSet {}

impl Default for SmallBitSet {
    fn default() -> Self {
        SmallBitSet::Inline(0)
    }
}

impl SmallBitSet {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// True iff no bit is set.
    pub fn is_empty(&self) -> bool {
        match self {
            SmallBitSet::Inline(w) => *w == 0,
            SmallBitSet::Spill(ws) => ws.iter().all(|&w| w == 0),
        }
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        match self {
            SmallBitSet::Inline(w) => w.count_ones() as usize,
            SmallBitSet::Spill(ws) => ws.iter().map(|w| w.count_ones() as usize).sum(),
        }
    }

    /// Inserts index `i`, spilling to the heap if `i >= 64`.
    pub fn insert(&mut self, i: usize) {
        let word = i / 64;
        let bit = 1u64 << (i % 64);
        match self {
            SmallBitSet::Inline(w) if word == 0 => *w |= bit,
            SmallBitSet::Inline(w) => {
                let mut words = vec![0u64; word + 1];
                words[0] = *w;
                words[word] |= bit;
                *self = SmallBitSet::Spill(words.into_boxed_slice());
            }
            SmallBitSet::Spill(ws) => {
                if word >= ws.len() {
                    let mut words = ws.to_vec();
                    words.resize(word + 1, 0);
                    words[word] |= bit;
                    *self = SmallBitSet::Spill(words.into_boxed_slice());
                } else {
                    ws[word] |= bit;
                }
            }
        }
    }

    /// True iff index `i` is set.
    pub fn contains(&self, i: usize) -> bool {
        let word = i / 64;
        let bit = 1u64 << (i % 64);
        match self {
            SmallBitSet::Inline(w) => word == 0 && *w & bit != 0,
            SmallBitSet::Spill(ws) => word < ws.len() && ws[word] & bit != 0,
        }
    }

    /// `self |= other` — word-wise, with at most one reallocation.
    pub fn union_with(&mut self, other: &SmallBitSet) {
        if let (SmallBitSet::Inline(a), SmallBitSet::Inline(b)) = (&mut *self, other) {
            *a |= *b;
            return;
        }
        let theirs = other.words();
        // OR in place when the spill is already wide enough.
        if let SmallBitSet::Spill(ws) = &mut *self {
            if theirs.len() <= ws.len() {
                for (w, &o) in ws.iter_mut().zip(theirs) {
                    *w |= o;
                }
                return;
            }
        }
        let ours = self.words();
        let mut words = vec![0u64; ours.len().max(theirs.len())];
        for (i, w) in words.iter_mut().enumerate() {
            *w = ours.get(i).copied().unwrap_or(0) | theirs.get(i).copied().unwrap_or(0);
        }
        *self = SmallBitSet::Spill(words.into_boxed_slice());
    }

    /// The backing words (one inline, or the spill slice).
    fn words(&self) -> &[u64] {
        match self {
            SmallBitSet::Inline(w) => std::slice::from_ref(w),
            SmallBitSet::Spill(ws) => ws,
        }
    }

    /// Iterates the set indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        let words = self.words();
        words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(wi * 64 + b)
            })
        })
    }

    /// Heap bytes owned by the set (0 while inline).
    pub fn heap_bytes(&self) -> usize {
        match self {
            SmallBitSet::Inline(_) => 0,
            SmallBitSet::Spill(ws) => std::mem::size_of_val::<[u64]>(ws),
        }
    }
}

impl std::fmt::Debug for SmallBitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for SmallBitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = SmallBitSet::new();
        for i in iter {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_basics() {
        let mut s = SmallBitSet::new();
        assert!(s.is_empty());
        s.insert(0);
        s.insert(63);
        assert!(matches!(s, SmallBitSet::Inline(_)));
        assert_eq!(s.len(), 2);
        assert!(s.contains(0) && s.contains(63) && !s.contains(5));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63]);
        assert_eq!(s.heap_bytes(), 0);
    }

    #[test]
    fn spills_past_64_and_keeps_contents() {
        let mut s = SmallBitSet::new();
        s.insert(3);
        s.insert(64);
        s.insert(130);
        assert!(matches!(s, SmallBitSet::Spill(_)));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 64, 130]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(64) && !s.contains(65));
        assert!(s.heap_bytes() >= 3 * 8);
    }

    #[test]
    fn union_mixes_representations() {
        let a: SmallBitSet = [1usize, 5].into_iter().collect();
        let b: SmallBitSet = [5usize, 70].into_iter().collect();
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 5, 70]);
        let mut v = b;
        v.union_with(&a);
        assert_eq!(v.iter().collect::<Vec<_>>(), vec![1, 5, 70]);
        // Spill ∪ wider spill reallocates once and keeps everything.
        let mut w: SmallBitSet = [65usize].into_iter().collect();
        let wide: SmallBitSet = [2usize, 200].into_iter().collect();
        w.union_with(&wide);
        assert_eq!(w.iter().collect::<Vec<_>>(), vec![2, 65, 200]);
    }

    #[test]
    fn inline_union_is_wordwise() {
        let a: SmallBitSet = [0usize, 2].into_iter().collect();
        let mut b: SmallBitSet = [1usize].into_iter().collect();
        b.union_with(&a);
        assert_eq!(b, [0usize, 1, 2].into_iter().collect());
    }
}
