//! Byte-accurate memory accounting.
//!
//! The paper's Fig. 14 reports the memory consumed by each order-
//! optimization framework during plan generation. We reproduce that by
//! having each framework report the bytes of its per-plan annotations and
//! shared structures through a [`MemoryMeter`] instead of relying on a
//! global allocator hook (which would also count plan-generator noise).

use std::cell::Cell;

/// Tracks current and peak logical byte usage of one subsystem.
///
/// Interior mutability (`Cell`) keeps the accounting callable from `&self`
/// methods on oracles without threading `&mut` through the plan generator.
#[derive(Debug, Default)]
pub struct MemoryMeter {
    current: Cell<usize>,
    peak: Cell<usize>,
}

impl MemoryMeter {
    /// Creates a meter with zero usage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an allocation of `bytes`.
    pub fn alloc(&self, bytes: usize) {
        let cur = self.current.get() + bytes;
        self.current.set(cur);
        if cur > self.peak.get() {
            self.peak.set(cur);
        }
    }

    /// Records a release of `bytes`.
    pub fn free(&self, bytes: usize) {
        self.current.set(self.current.get().saturating_sub(bytes));
    }

    /// Bytes currently accounted.
    pub fn current(&self) -> usize {
        self.current.get()
    }

    /// High-water mark in bytes.
    pub fn peak(&self) -> usize {
        self.peak.get()
    }

    /// Resets both counters to zero.
    pub fn reset(&self) {
        self.current.set(0);
        self.peak.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_current_and_peak() {
        let m = MemoryMeter::new();
        m.alloc(100);
        m.alloc(50);
        assert_eq!(m.current(), 150);
        assert_eq!(m.peak(), 150);
        m.free(120);
        assert_eq!(m.current(), 30);
        assert_eq!(m.peak(), 150);
        m.alloc(10);
        assert_eq!(m.peak(), 150);
    }

    #[test]
    fn free_saturates() {
        let m = MemoryMeter::new();
        m.alloc(5);
        m.free(100);
        assert_eq!(m.current(), 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let m = MemoryMeter::new();
        m.alloc(42);
        m.reset();
        assert_eq!(m.current(), 0);
        assert_eq!(m.peak(), 0);
    }
}
