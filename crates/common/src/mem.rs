//! Byte-accurate memory accounting.
//!
//! The paper's Fig. 14 reports the memory consumed by each order-
//! optimization framework during plan generation. We reproduce that by
//! having each framework report the bytes of its per-plan annotations and
//! shared structures through a [`MemoryMeter`] instead of relying on a
//! global allocator hook (which would also count plan-generator noise).
//!
//! The meter is atomic, so it is `Sync`: the parallel DP driver's
//! workers all charge the one meter inside their shared oracle without
//! any external locking. The counters are logical bytes, not allocator
//! truth, so relaxed ordering is sufficient.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Tracks current and peak logical byte usage of one subsystem.
///
/// Atomics keep the accounting callable from `&self` methods on oracles
/// without threading `&mut` through the plan generator, and make the
/// meter shareable across the parallel driver's worker threads.
#[derive(Debug, Default)]
pub struct MemoryMeter {
    current: AtomicUsize,
    peak: AtomicUsize,
}

impl MemoryMeter {
    /// Creates a meter with zero usage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an allocation of `bytes`.
    pub fn alloc(&self, bytes: usize) {
        let cur = self.current.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(cur, Ordering::Relaxed);
    }

    /// Records a release of `bytes`.
    pub fn free(&self, bytes: usize) {
        // Saturate at zero (a free may race another thread's alloc; the
        // counter is logical, so clamping beats wrapping).
        let _ = self
            .current
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                Some(cur.saturating_sub(bytes))
            });
    }

    /// Bytes currently accounted.
    pub fn current(&self) -> usize {
        self.current.load(Ordering::Relaxed)
    }

    /// High-water mark in bytes.
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Resets both counters to zero.
    pub fn reset(&self) {
        self.current.store(0, Ordering::Relaxed);
        self.peak.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_current_and_peak() {
        let m = MemoryMeter::new();
        m.alloc(100);
        m.alloc(50);
        assert_eq!(m.current(), 150);
        assert_eq!(m.peak(), 150);
        m.free(120);
        assert_eq!(m.current(), 30);
        assert_eq!(m.peak(), 150);
        m.alloc(10);
        assert_eq!(m.peak(), 150);
    }

    #[test]
    fn free_saturates() {
        let m = MemoryMeter::new();
        m.alloc(5);
        m.free(100);
        assert_eq!(m.current(), 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let m = MemoryMeter::new();
        m.alloc(42);
        m.reset();
        assert_eq!(m.current(), 0);
        assert_eq!(m.peak(), 0);
    }

    #[test]
    fn meter_is_shareable_across_threads() {
        let m = MemoryMeter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        m.alloc(3);
                        m.free(1);
                    }
                });
            }
        });
        assert_eq!(m.current(), 4 * 1000 * 2);
        assert!(m.peak() >= m.current());
    }
}
