//! A dense 2-D bit matrix.
//!
//! Backs the precomputed `contains` table of the paper (§5.5, Fig. 9):
//! rows are DFSM states, columns are interesting orders, and
//! `contains(state, order)` is a single bit probe. Rows are word-aligned so
//! the row-subset test used for plan-domination pruning is word-parallel.

/// A rows × cols matrix of bits with O(1) probe and word-parallel row ops.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    row_blocks: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    /// Creates an all-zero matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        let row_blocks = cols.div_ceil(64).max(1);
        BitMatrix {
            rows,
            cols,
            row_blocks,
            bits: vec![0; rows * row_blocks],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Heap bytes consumed.
    pub fn heap_bytes(&self) -> usize {
        self.bits.capacity() * 8
    }

    /// Sets bit (`row`, `col`).
    #[inline]
    pub fn set(&mut self, row: usize, col: usize) {
        debug_assert!(row < self.rows && col < self.cols);
        self.bits[row * self.row_blocks + col / 64] |= 1u64 << (col % 64);
    }

    /// Reads bit (`row`, `col`).
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> bool {
        debug_assert!(row < self.rows && col < self.cols);
        self.bits[row * self.row_blocks + col / 64] & (1u64 << (col % 64)) != 0
    }

    /// True if every bit set in row `b` is also set in row `a`.
    ///
    /// This is the plan-domination test: DFSM state `a` satisfies at least
    /// the interesting orders state `b` does.
    #[inline]
    pub fn row_is_superset(&self, a: usize, b: usize) -> bool {
        let ra = &self.bits[a * self.row_blocks..(a + 1) * self.row_blocks];
        let rb = &self.bits[b * self.row_blocks..(b + 1) * self.row_blocks];
        ra.iter().zip(rb).all(|(x, y)| x & y == *y)
    }

    /// Number of set bits in a row.
    pub fn row_count(&self, row: usize) -> usize {
        self.bits[row * self.row_blocks..(row + 1) * self.row_blocks]
            .iter()
            .map(|b| b.count_ones() as usize)
            .sum()
    }

    /// Iterates the set columns of a row in ascending order.
    pub fn row_iter(&self, row: usize) -> impl Iterator<Item = usize> + '_ {
        let blocks = &self.bits[row * self.row_blocks..(row + 1) * self.row_blocks];
        blocks.iter().enumerate().flat_map(|(bi, &b)| {
            (0..64)
                .filter(move |bit| b & (1u64 << bit) != 0)
                .map(move |bit| bi * 64 + bit)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get() {
        let mut m = BitMatrix::new(3, 70);
        m.set(0, 0);
        m.set(1, 63);
        m.set(1, 64);
        m.set(2, 69);
        assert!(m.get(0, 0) && m.get(1, 63) && m.get(1, 64) && m.get(2, 69));
        assert!(!m.get(0, 1) && !m.get(2, 0));
    }

    #[test]
    fn row_superset() {
        let mut m = BitMatrix::new(3, 130);
        for c in [1usize, 5, 127] {
            m.set(0, c);
        }
        for c in [1usize, 5] {
            m.set(1, c);
        }
        m.set(2, 6);
        assert!(m.row_is_superset(0, 1));
        assert!(!m.row_is_superset(1, 0));
        assert!(!m.row_is_superset(0, 2));
        // Every row is a superset of itself.
        for r in 0..3 {
            assert!(m.row_is_superset(r, r));
        }
    }

    #[test]
    fn row_iter_and_count() {
        let mut m = BitMatrix::new(2, 100);
        for c in [0usize, 64, 99] {
            m.set(1, c);
        }
        assert_eq!(m.row_iter(1).collect::<Vec<_>>(), vec![0, 64, 99]);
        assert_eq!(m.row_count(1), 3);
        assert_eq!(m.row_count(0), 0);
    }

    #[test]
    fn zero_cols_is_safe() {
        let m = BitMatrix::new(4, 0);
        assert_eq!(m.rows(), 4);
        assert!(m.row_is_superset(0, 3));
    }
}
