//! FxHash: the fast, non-cryptographic hash used throughout the workspace.
//!
//! This is a from-scratch implementation of the well-known Fx algorithm
//! (originally from Firefox, popularized by `rustc`). We re-implement it in
//! ~40 lines instead of adding a dependency; the algorithm is public domain
//! folklore: `state = (state.rotate_left(5) ^ word) * SEED`.
//!
//! HashDoS resistance is irrelevant here: all hashed values are internal
//! (interned ids, orderings, state sets), never attacker-controlled.

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx seed (`π`-derived constant used by rustc's FxHasher).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic [`Hasher`] (the Fx algorithm).
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&bytes[..8]);
            self.add_word(u64::from_le_bytes(buf));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let mut buf = [0u8; 4];
            buf.copy_from_slice(&bytes[..4]);
            self.add_word(u64::from(u32::from_le_bytes(buf)));
            bytes = &bytes[4..];
        }
        for &b in bytes {
            self.add_word(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_word(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_word(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_word(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_word(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&"abc"), hash_of(&"abc"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&vec![1u32, 2]), hash_of(&vec![2u32, 1]));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<Vec<u32>, usize> = FxHashMap::default();
        for i in 0..1000usize {
            m.insert(vec![i as u32, (i * 7) as u32], i);
        }
        for i in 0..1000usize {
            assert_eq!(m[&vec![i as u32, (i * 7) as u32]], i);
        }
    }

    #[test]
    fn mixed_width_writes_differ_from_concatenation() {
        // Sanity: writing (1u32, 2u32) differs from writing 1u64<<32|2 as
        // one word often enough that buckets spread; just check inequality
        // of two obviously different streams.
        let mut a = FxHasher::default();
        a.write_u32(1);
        a.write_u32(2);
        let mut b = FxHasher::default();
        b.write_u32(2);
        b.write_u32(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn byte_tail_handling() {
        // Lengths 0..=9 exercise the 8-byte, 4-byte and tail paths.
        let data: Vec<u8> = (0u8..9).collect();
        let mut seen = std::collections::HashSet::new();
        for len in 0..=data.len() {
            let mut h = FxHasher::default();
            h.write(&data[..len]);
            seen.insert(h.finish());
        }
        // All prefixes should hash differently (no accidental collisions
        // in this tiny deterministic set — except possibly the empty one).
        assert!(seen.len() >= data.len());
    }
}
