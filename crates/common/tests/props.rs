//! Property-based tests for the substrate data structures: the bit set,
//! bit matrix and interner must behave exactly like their obvious
//! `std::collections` models.

use ofw_common::{BitMatrix, BitSet, Interner};
use proptest::prelude::*;
use std::collections::BTreeSet;

const UNIVERSE: usize = 200;

fn arb_elems() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..UNIVERSE, 0..64)
}

proptest! {
    /// BitSet behaves like BTreeSet for membership and iteration order.
    #[test]
    fn bitset_models_btreeset(elems in arb_elems(), removals in arb_elems()) {
        let mut bs = BitSet::new(UNIVERSE);
        let mut model: BTreeSet<usize> = BTreeSet::new();
        for &e in &elems {
            bs.insert(e);
            model.insert(e);
        }
        for &r in &removals {
            bs.remove(r);
            model.remove(&r);
        }
        prop_assert_eq!(bs.len(), model.len());
        prop_assert!(bs.is_empty() == model.is_empty());
        let collected: Vec<usize> = bs.iter().collect();
        let expected: Vec<usize> = model.iter().copied().collect();
        prop_assert_eq!(collected, expected, "ascending iteration");
        for probe in 0..UNIVERSE {
            prop_assert_eq!(bs.contains(probe), model.contains(&probe));
        }
    }

    /// Set algebra agrees with the model.
    #[test]
    fn bitset_algebra_models_btreeset(a in arb_elems(), b in arb_elems()) {
        let build = |v: &[usize]| {
            let mut s = BitSet::new(UNIVERSE);
            for &e in v {
                s.insert(e);
            }
            s
        };
        let (sa, sb) = (build(&a), build(&b));
        let (ma, mb): (BTreeSet<usize>, BTreeSet<usize>) =
            (a.iter().copied().collect(), b.iter().copied().collect());

        let mut u = sa.clone();
        u.union_with(&sb);
        prop_assert_eq!(
            u.iter().collect::<Vec<_>>(),
            ma.union(&mb).copied().collect::<Vec<_>>()
        );

        let mut i = sa.clone();
        i.intersect_with(&sb);
        prop_assert_eq!(
            i.iter().collect::<Vec<_>>(),
            ma.intersection(&mb).copied().collect::<Vec<_>>()
        );

        let mut d = sa.clone();
        d.difference_with(&sb);
        prop_assert_eq!(
            d.iter().collect::<Vec<_>>(),
            ma.difference(&mb).copied().collect::<Vec<_>>()
        );

        prop_assert_eq!(sa.is_superset(&sb), mb.is_subset(&ma));
        prop_assert_eq!(sa.intersects(&sb), !ma.is_disjoint(&mb));
    }

    /// Row-subset tests on the matrix agree with per-bit comparison.
    #[test]
    fn bitmatrix_row_superset_models_bits(
        rows in proptest::collection::vec(arb_elems(), 2..6),
    ) {
        let cols = UNIVERSE;
        let mut m = BitMatrix::new(rows.len(), cols);
        for (r, elems) in rows.iter().enumerate() {
            for &c in elems {
                m.set(r, c);
            }
        }
        for a in 0..rows.len() {
            prop_assert_eq!(m.row_count(a), {
                let s: BTreeSet<usize> = rows[a].iter().copied().collect();
                s.len()
            });
            for b in 0..rows.len() {
                let expected = (0..cols).all(|c| !m.get(b, c) || m.get(a, c));
                prop_assert_eq!(m.row_is_superset(a, b), expected, "rows {} {}", a, b);
            }
        }
    }

    /// Interning is a bijection between first-seen values and handles.
    #[test]
    fn interner_is_bijective(values in proptest::collection::vec(0u64..50, 1..100)) {
        let mut interner: Interner<u64> = Interner::new();
        let handles: Vec<u32> = values.iter().map(|&v| interner.intern(v)).collect();
        // Same value ⇒ same handle; different values ⇒ different handles.
        for (i, &vi) in values.iter().enumerate() {
            for (j, &vj) in values.iter().enumerate() {
                prop_assert_eq!(handles[i] == handles[j], vi == vj);
            }
        }
        // Resolution round-trips.
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(*interner.resolve(handles[i]), v);
            prop_assert_eq!(interner.get(&v), Some(handles[i]));
        }
        // Handles are dense.
        let distinct: BTreeSet<u64> = values.iter().copied().collect();
        prop_assert_eq!(interner.len(), distinct.len());
    }
}
