//! Decision telemetry: plain-old-data counters the optimizer fills in
//! while it works. Everything here is deterministic (no wall clock):
//! the same query on the same build produces the same counts at any
//! thread count, which is what lets `scripts/bench_trend.py` gate them
//! across machines.

use std::time::Duration;

/// Number of aggregation comparability classes tracked by
/// [`PruneCounters`]. Matches the 3-bit `AggMark` encoding in the plan
/// generator (none / eager / eager-count / final and unions thereof).
pub const AGG_CLASSES: usize = 8;

/// Pareto-pruning outcomes per aggregation comparability class.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PruneCounters {
    /// Candidates admitted into the plan table, per class.
    pub kept: [u64; AGG_CLASSES],
    /// Candidates rejected as dominated (or evicted by a later
    /// dominating candidate), per class.
    pub dominated: [u64; AGG_CLASSES],
    /// Candidates rejected by the branch-and-bound cost bound *before*
    /// a plan node was materialized or the oracle was probed (see the
    /// plan generator's pruning seam). Not split by class: the bound is
    /// checked before the candidate's state — and sometimes before its
    /// operator — exists.
    pub bound_pruned: u64,
}

impl PruneCounters {
    /// Total candidates kept across classes.
    pub fn kept_total(&self) -> u64 {
        self.kept.iter().sum()
    }

    /// Total candidates dominated across classes.
    pub fn dominated_total(&self) -> u64 {
        self.dominated.iter().sum()
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &Self) {
        for i in 0..AGG_CLASSES {
            self.kept[i] += other.kept[i];
            self.dominated[i] += other.dominated[i];
        }
        self.bound_pruned += other.bound_pruned;
    }
}

/// Enforcer-choice outcomes: how often each enforcer produced a
/// candidate ("admitted") and how often that candidate survived
/// pruning ("won").
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EnforcerCounters {
    /// Full `Sort` candidates generated.
    pub sort_admitted: u64,
    /// Full `Sort` candidates that survived pruning.
    pub sort_won: u64,
    /// `PartialSort` candidates generated.
    pub partial_sort_admitted: u64,
    /// `PartialSort` candidates that survived pruning.
    pub partial_sort_won: u64,
    /// `HashGroup` candidates generated.
    pub hash_group_admitted: u64,
    /// `HashGroup` candidates that survived pruning.
    pub hash_group_won: u64,
}

impl EnforcerCounters {
    /// Total enforcer candidates generated.
    pub fn admitted_total(&self) -> u64 {
        self.sort_admitted + self.partial_sort_admitted + self.hash_group_admitted
    }

    /// Total enforcer candidates that survived pruning.
    pub fn won_total(&self) -> u64 {
        self.sort_won + self.partial_sort_won + self.hash_group_won
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &Self) {
        self.sort_admitted += other.sort_admitted;
        self.sort_won += other.sort_won;
        self.partial_sort_admitted += other.partial_sort_admitted;
        self.partial_sort_won += other.partial_sort_won;
        self.hash_group_admitted += other.hash_group_admitted;
        self.hash_group_won += other.hash_group_won;
    }
}

/// Oracle probe counts, by probe family.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProbeCounters {
    /// `produce` / `produce_grouping` / `produce_empty` calls.
    pub produce: u64,
    /// `infer` calls (one per FD applied to a stream).
    pub infer: u64,
    /// `satisfies` / `satisfies_grouping` / `satisfies_head_tail` calls.
    pub satisfies: u64,
    /// `dominates` calls (one per Pareto comparison that actually
    /// reached the oracle).
    pub dominates: u64,
    /// Pareto comparisons answered *without* an oracle call: exact
    /// state equality (dominance is reflexive) or a per-union
    /// `(state, state) → bool` memo hit. Kept out of
    /// [`total`](Self::total) so `oracle_probes` keeps counting real
    /// oracle work.
    pub dominance_memo_hits: u64,
}

impl ProbeCounters {
    /// Total probes across families — the work the oracle actually
    /// performed (memo hits excluded by design).
    pub fn total(&self) -> u64 {
        self.produce + self.infer + self.satisfies + self.dominates
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &Self) {
        self.produce += other.produce;
        self.infer += other.infer;
        self.satisfies += other.satisfies;
        self.dominates += other.dominates;
        self.dominance_memo_hits += other.dominance_memo_hits;
    }
}

/// All decision telemetry for a stretch of optimizer work.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DecisionCounters {
    /// Pareto-pruning outcomes.
    pub pruning: PruneCounters,
    /// Enforcer admissions and wins.
    pub enforcers: EnforcerCounters,
    /// Oracle probe counts.
    pub probes: ProbeCounters,
}

impl DecisionCounters {
    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &Self) {
        self.pruning.merge(&other.pruning);
        self.enforcers.merge(&other.enforcers);
        self.probes.merge(&other.probes);
    }
}

/// Per-phase statistics: one entry per plan-generation phase (base
/// plans, each DP layer, aggregate finalization, final pick), exposed
/// as `PlanGenStats::phases`. The `time` field is wall-clock; all
/// other fields are deterministic.
#[derive(Clone, Debug, Default)]
pub struct PhaseStats {
    /// Phase name ("base", "layer 2", ..., "finalize", "pick_final",
    /// "enumerate").
    pub name: String,
    /// Wall-clock time spent in the phase.
    pub time: Duration,
    /// Unions (DP table entries) processed in the phase.
    pub unions: u64,
    /// Enumerator pairs considered for the phase's layer.
    pub pairs_considered: u64,
    /// Enumerator pairs emitted for the phase's layer.
    pub pairs_emitted: u64,
    /// Plan nodes materialized during the phase.
    pub plans: u64,
    /// Decision telemetry accumulated during the phase.
    pub decisions: DecisionCounters,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_merge_componentwise() {
        let mut a = DecisionCounters::default();
        a.pruning.kept[0] = 3;
        a.pruning.dominated[4] = 2;
        a.enforcers.sort_admitted = 5;
        a.enforcers.partial_sort_won = 1;
        a.probes.infer = 10;
        let mut b = DecisionCounters::default();
        b.pruning.kept[0] = 1;
        b.pruning.kept[1] = 7;
        b.enforcers.sort_admitted = 2;
        b.probes.dominates = 4;
        a.merge(&b);
        assert_eq!(a.pruning.kept_total(), 11);
        assert_eq!(a.pruning.dominated_total(), 2);
        assert_eq!(a.enforcers.sort_admitted, 7);
        assert_eq!(a.enforcers.admitted_total(), 7);
        assert_eq!(a.enforcers.won_total(), 1);
        assert_eq!(a.probes.total(), 14);
    }
}
