//! # ofw-obs — structured tracing and decision telemetry
//!
//! A dependency-free observability layer for the optimizer stack:
//!
//! - [`Trace`] — a cloneable span sink. The default ([`Trace::disabled`])
//!   is a `None` behind an `Option<Arc<..>>`, so every instrumentation
//!   site reduces to one branch on a pointer check and the hot path
//!   stays byte-identical in behaviour. [`Trace::recording`] buffers
//!   [`SpanRecord`]s that export as a Chrome trace-event JSON
//!   ([`Trace::chrome_json`], openable in Perfetto), a plain-text
//!   summary tree ([`Trace::summary_tree`]), and a deterministic
//!   skeleton ([`Trace::skeleton`]) used by cross-thread-count
//!   stability tests.
//! - [`metrics`] — plain-old-data counters for optimizer decisions:
//!   Pareto pruning per comparability class ([`PruneCounters`]),
//!   enforcer admissions/wins ([`EnforcerCounters`]), oracle probe
//!   counts ([`ProbeCounters`]), all bundled as [`DecisionCounters`]
//!   and aggregated per phase in [`PhaseStats`].
//!
//! Determinism contract: records are appended at span *start* (the
//! index is reserved under the sink lock; duration is back-filled on
//! drop), and per-worker buffers ([`LocalSpans`]) are absorbed by the
//! driver in deterministic batch order — so the skeleton (names,
//! labels, depths, counters) is identical across thread counts, while
//! timestamps and thread lanes are wall-clock-class data excluded from
//! it.

pub mod metrics;
pub mod trace;

pub use metrics::{
    DecisionCounters, EnforcerCounters, PhaseStats, ProbeCounters, PruneCounters, AGG_CLASSES,
};
pub use trace::{LocalSpans, Span, SpanRecord, Trace};

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }
}
