//! The span sink: nested, labelled, counter-carrying spans with a
//! disabled mode that costs one pointer check per instrumentation site.
//!
//! ## Determinism
//!
//! A recording [`Trace`] reserves each span's [`SpanRecord`] slot when
//! the span **starts** (under the sink lock) and back-fills the
//! duration, label, and counters when the span drops. On a single
//! thread, record order is therefore exactly span-start order. Workers
//! on the parallel pool do not touch the shared sink at all: they
//! record into a thread-local [`LocalSpans`] buffer that the driver
//! absorbs in deterministic batch order. The result is that the
//! *skeleton* of a trace — names, labels, depths, deterministic
//! counters, in order — is identical across thread counts; only
//! timestamps and thread lanes (which are wall-clock-class data)
//! differ.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// One recorded span: a named, labelled interval with counters.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Static span name (the taxonomy: "plangen", "prepare", "nfsm",
    /// "determinize", "minimize", "intern", "extract", "base_plans",
    /// "enumerate", "dp_layer", "union", "finalize_aggregates",
    /// "pick_final", and the vectorized executor's "execute").
    pub name: &'static str,
    /// Free-form label ("layer 3", enumerator name, ...). Empty if unset.
    pub label: String,
    /// Nesting depth (0 = root).
    pub depth: u16,
    /// Thread lane the span ran on (stable per thread, not across runs).
    pub tid: u32,
    /// Start offset from the trace epoch, microseconds.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Deterministic counters attached to the span, in attach order.
    pub counters: Vec<(&'static str, u64)>,
}

struct Shared {
    epoch: Instant,
    records: Mutex<Vec<SpanRecord>>,
}

fn lock(m: &Mutex<Vec<SpanRecord>>) -> MutexGuard<'_, Vec<SpanRecord>> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

static NEXT_LANE: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static LANE: u32 = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
}

fn lane() -> u32 {
    LANE.with(|l| *l)
}

/// A cloneable span sink. Cloning is cheap (an `Arc` bump) and all
/// clones feed the same buffer. The [`Default`] is disabled.
#[derive(Clone, Default)]
pub struct Trace {
    shared: Option<Arc<Shared>>,
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trace")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Trace {
    /// The no-op sink: spans and counters compile down to a pointer
    /// check and recording never happens.
    pub fn disabled() -> Self {
        Self { shared: None }
    }

    /// A recording sink buffering [`SpanRecord`]s for export.
    pub fn recording() -> Self {
        Self {
            shared: Some(Arc::new(Shared {
                epoch: Instant::now(),
                records: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Whether this sink records anything.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Opens a root-depth span. No-op (and allocation-free) when
    /// disabled.
    pub fn span(&self, name: &'static str) -> Span<'_> {
        self.span_at(name, 0)
    }

    /// Opens a span at an explicit nesting depth. Use
    /// [`Span::child`] where a parent span is in scope; this entry
    /// point exists for call sites that only know their depth (e.g.
    /// instrumented callees receiving a `&Trace`).
    pub fn span_at(&self, name: &'static str, depth: u16) -> Span<'_> {
        let live = self.shared.as_ref().map(|sh| {
            let mut records = lock(&sh.records);
            let idx = records.len();
            records.push(SpanRecord {
                name,
                label: String::new(),
                depth,
                tid: lane(),
                start_us: duration_us(sh.epoch, Instant::now()),
                dur_us: 0,
                counters: Vec::new(),
            });
            (idx, Instant::now())
        });
        Span {
            trace: self,
            depth,
            live,
            label: None,
            counters: Vec::new(),
        }
    }

    /// A per-worker buffer whose spans nest at `depth`. Workers push
    /// into it without touching the shared sink; the driver calls
    /// [`Trace::absorb`] in deterministic order.
    pub fn local(&self, depth: u16) -> LocalSpans {
        LocalSpans {
            epoch: self.shared.as_ref().map(|sh| sh.epoch),
            depth,
            records: Vec::new(),
        }
    }

    /// Appends a worker buffer's spans to the sink. Call in
    /// deterministic (batch) order to keep the skeleton stable across
    /// thread counts. No-op when disabled.
    pub fn absorb(&self, local: LocalSpans) {
        if let Some(sh) = &self.shared {
            if !local.records.is_empty() {
                lock(&sh.records).extend(local.records);
            }
        }
    }

    /// Snapshot of all records so far.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.shared
            .as_ref()
            .map(|sh| lock(&sh.records).clone())
            .unwrap_or_default()
    }

    /// The trace as Chrome trace-event JSON (complete "X" events),
    /// openable in Perfetto / `chrome://tracing`.
    pub fn chrome_json(&self) -> String {
        let records = self.records();
        let mut out = String::from("{\"traceEvents\":[");
        for (i, r) in records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"ofw\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{",
                crate::json_escape(r.name),
                r.start_us,
                r.dur_us,
                r.tid,
            ));
            let mut first = true;
            if !r.label.is_empty() {
                out.push_str(&format!("\"label\":\"{}\"", crate::json_escape(&r.label)));
                first = false;
            }
            for (k, v) in &r.counters {
                if !first {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{}", crate::json_escape(k), v));
                first = false;
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// A plain-text summary tree: one line per span, indented by
    /// depth, with duration and counters.
    pub fn summary_tree(&self) -> String {
        let mut out = String::new();
        for r in self.records() {
            out.push_str(&" ".repeat(2 * r.depth as usize));
            out.push_str(r.name);
            if !r.label.is_empty() {
                out.push_str(&format!(" [{}]", r.label));
            }
            out.push_str(&format!(" {:.3}ms", r.dur_us as f64 / 1e3));
            for (k, v) in &r.counters {
                out.push_str(&format!(" {k}={v}"));
            }
            out.push('\n');
        }
        out
    }

    /// The deterministic part of the trace: names, labels, depths, and
    /// counters in record order — no timestamps, no thread lanes.
    /// Identical across thread counts for the same work.
    pub fn skeleton(&self) -> String {
        let mut out = String::new();
        for r in self.records() {
            out.push_str(&format!("{}|{}|{}", r.depth, r.name, r.label));
            for (k, v) in &r.counters {
                out.push_str(&format!("|{k}={v}"));
            }
            out.push('\n');
        }
        out
    }
}

fn duration_us(epoch: Instant, now: Instant) -> u64 {
    now.saturating_duration_since(epoch).as_micros() as u64
}

/// A live span handle. Dropping it closes the span and back-fills its
/// record. All methods are no-ops on a disabled sink.
pub struct Span<'t> {
    trace: &'t Trace,
    depth: u16,
    live: Option<(usize, Instant)>,
    label: Option<String>,
    counters: Vec<(&'static str, u64)>,
}

impl<'t> Span<'t> {
    /// Opens a child span one level deeper.
    pub fn child(&self, name: &'static str) -> Span<'t> {
        self.trace.span_at(name, self.depth + 1)
    }

    /// This span's nesting depth.
    pub fn depth(&self) -> u16 {
        self.depth
    }

    /// Sets the span's free-form label.
    pub fn label(&mut self, label: impl Into<String>) {
        if self.live.is_some() {
            self.label = Some(label.into());
        }
    }

    /// Attaches a deterministic counter to the span.
    pub fn count(&mut self, name: &'static str, value: u64) {
        if self.live.is_some() {
            self.counters.push((name, value));
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let (Some((idx, started)), Some(sh)) = (self.live.take(), self.trace.shared.as_ref())
        else {
            return;
        };
        let dur = started.elapsed().as_micros() as u64;
        let mut records = lock(&sh.records);
        let r = &mut records[idx];
        r.dur_us = dur;
        if let Some(label) = self.label.take() {
            r.label = label;
        }
        r.counters = std::mem::take(&mut self.counters);
    }
}

/// A per-worker span buffer. Created by [`Trace::local`]; workers push
/// completed spans into it and the driver absorbs it in deterministic
/// order. When the trace is disabled every method is a no-op.
#[derive(Debug)]
pub struct LocalSpans {
    epoch: Option<Instant>,
    depth: u16,
    records: Vec<SpanRecord>,
}

impl LocalSpans {
    /// Marks a span start. Returns `None` when the trace is disabled
    /// (so disabled runs never call `Instant::now`).
    pub fn start(&self) -> Option<Instant> {
        self.epoch.map(|_| Instant::now())
    }

    /// Records a completed span started at `started` (from
    /// [`LocalSpans::start`]).
    pub fn push(
        &mut self,
        name: &'static str,
        label: String,
        started: Option<Instant>,
        counters: Vec<(&'static str, u64)>,
    ) {
        let (Some(epoch), Some(started)) = (self.epoch, started) else {
            return;
        };
        self.records.push(SpanRecord {
            name,
            label,
            depth: self.depth,
            tid: lane(),
            start_us: duration_us(epoch, started),
            dur_us: started.elapsed().as_micros() as u64,
            counters,
        });
    }

    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let t = Trace::disabled();
        assert!(!t.is_enabled());
        {
            let mut sp = t.span("root");
            sp.label("ignored");
            sp.count("n", 7);
            let _child = sp.child("inner");
        }
        let mut local = t.local(1);
        assert!(local.start().is_none());
        local.push("union", String::new(), local.start(), vec![]);
        t.absorb(local);
        assert!(t.records().is_empty());
        assert_eq!(t.chrome_json(), "{\"traceEvents\":[]}");
        assert!(t.summary_tree().is_empty());
        assert!(t.skeleton().is_empty());
    }

    #[test]
    fn recording_trace_preserves_start_order_and_depth() {
        let t = Trace::recording();
        {
            let mut root = t.span("plangen");
            root.label("serial threads=1");
            root.count("plans", 3);
            {
                let mut c1 = root.child("base_plans");
                c1.count("plans", 2);
            }
            let _c2 = root.child("enumerate");
        }
        let records = t.records();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].name, "plangen");
        assert_eq!(records[0].depth, 0);
        assert_eq!(records[0].label, "serial threads=1");
        assert_eq!(records[0].counters, vec![("plans", 3)]);
        assert_eq!(records[1].name, "base_plans");
        assert_eq!(records[1].depth, 1);
        assert_eq!(records[2].name, "enumerate");
        // Records are reserved at start: the root (opened first) comes
        // first even though it closed last.
        assert!(records[0].dur_us >= records[1].dur_us);
    }

    #[test]
    fn local_spans_absorb_in_push_order() {
        let t = Trace::recording();
        let root = t.span("plangen");
        let mut local = t.local(root.depth() + 1);
        let s1 = local.start();
        local.push("union", "layer 2".into(), s1, vec![("kept", 4)]);
        let s2 = local.start();
        local.push("union", "layer 2".into(), s2, vec![("kept", 1)]);
        drop(root);
        t.absorb(local);
        let sk = t.skeleton();
        assert_eq!(
            sk,
            "0|plangen|\n1|union|layer 2|kept=4\n1|union|layer 2|kept=1\n"
        );
    }

    #[test]
    fn chrome_json_is_wellformed_shape() {
        let t = Trace::recording();
        {
            let mut sp = t.span("prepare");
            sp.label("q\"8");
            sp.count("nfsm_nodes", 12);
        }
        let json = t.chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"label\":\"q\\\"8\""));
        assert!(json.contains("\"nfsm_nodes\":12"));
    }
}
