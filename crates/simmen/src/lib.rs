//! # ofw-simmen — the Simmen et al. baseline
//!
//! The order-optimization component of *Simmen, Shekita & Malkemus,
//! "Fundamental Techniques for Order Optimization"* (SIGMOD 1996), as
//! described (and tuned) in §3 and §7 of the Neumann & Moerkotte paper.
//!
//! Representation per plan node: the physical ordering plus the set of
//! functional dependencies that hold for the stream — Ω(n) space.
//! `contains` runs the *reduction* algorithm on both the node's ordering
//! and the required ordering and then tests for a prefix — Ω(n) time.
//! `inferNewLogicalOrderings` appends the operator's FD set — Ω(n) when
//! the environment must be copied.
//!
//! We apply the same tuning the paper applied to make the comparison
//! fair (§7):
//!
//! * **reduction caching** — "the most important measure was to cache
//!   results in order to eliminate repeated calls to the very expensive
//!   reduce operation";
//! * **tailored memory management** — FD environments are immutable,
//!   interned and shared between plan nodes instead of deep-copied
//!   ("since Simmen's algorithm requires dynamic memory, we implemented
//!   a specially tailored memory management").
//!
//! The paper also observes that Simmen's rewrite system is **not
//! confluent**: reducing under `{a→b, ab→c}` yields different normal
//! forms depending on application order, so `contains` can answer
//! `false` where `true` is correct and "some orderings remain
//! unexploited". We reproduce that behaviour faithfully (see the
//! non-confluence test in [`reduce`]).

pub mod env;
pub mod oracle;
pub mod reduce;

pub use env::{EnvStore, FdEnv, FdEnvId};
pub use oracle::SimmenOrderKey;
pub use oracle::{SimmenFramework, SimmenState};
