//! # ofw-simmen — the Simmen et al. baseline
//!
//! The order-optimization component of *Simmen, Shekita & Malkemus,
//! "Fundamental Techniques for Order Optimization"* (SIGMOD 1996), as
//! described (and tuned) in §3 and §7 of the Neumann & Moerkotte paper.
//!
//! Representation per plan node: the physical ordering plus the set of
//! functional dependencies that hold for the stream — Ω(n) space.
//! `contains` runs the *reduction* algorithm on both the node's ordering
//! and the required ordering and then tests for a prefix — Ω(n) time.
//! `inferNewLogicalOrderings` appends the operator's FD set — Ω(n) when
//! the environment must be copied.
//!
//! We apply the same tuning the paper applied to make the comparison
//! fair (§7):
//!
//! * **reduction caching** — "the most important measure was to cache
//!   results in order to eliminate repeated calls to the very expensive
//!   reduce operation";
//! * **tailored memory management** — FD environments are immutable,
//!   interned and shared between plan nodes instead of deep-copied
//!   ("since Simmen's algorithm requires dynamic memory, we implemented
//!   a specially tailored memory management").
//!
//! The paper also observes that Simmen's rewrite system is **not
//! confluent**: reducing under `{a→b, ab→c}` yields different normal
//! forms depending on application order, so `contains` can answer
//! `false` where `true` is correct and "some orderings remain
//! unexploited". We reproduce that behaviour faithfully (see the
//! non-confluence test in [`reduce`]).
//!
//! ## This crate as an oracle arm
//!
//! [`SimmenFramework`] is the baseline arm of the plan generator's
//! `OrderOracle` seam (the others: `ofw-core`'s DFSM and `ofw-plangen`'s
//! explicit-set oracle). Its arm invariants:
//!
//! * **persistent FD semantics** — a state carries its whole FD
//!   *environment*, so `contains` may exploit dependencies applied many
//!   operators ago (stronger per-probe information than the DFSM's
//!   sequential edge-at-the-operator semantics — and Ω(n) to use);
//! * **same optimal plans anyway** — on every workload in the suite the
//!   DP reaches the same optimum through this arm as through the other
//!   two (enforcer FD replay closes the semantic gap);
//! * **weak dominance** — two plans compare only with equal physical
//!   property and an environment superset, so this arm prunes fewer
//!   plans than DFSM state dominance; its Pareto sets widen with query
//!   size. That asymmetry *is* the paper's result, reproduced honestly;
//! * grouping and head/tail probes materialize cached per-(state,
//!   environment) closures — the Ω(n) price of a probe the DFSM answers
//!   with one precomputed bit.
//!
//! ## Example: `produce` / `infer` / `satisfies` on the baseline
//!
//! ```
//! use ofw_core::{Fd, InputSpec, Ordering};
//! use ofw_simmen::SimmenFramework;
//! use ofw_catalog::AttrId;
//!
//! let [a, b] = [AttrId(0), AttrId(1)];
//! let mut spec = InputSpec::new();
//! spec.add_produced(Ordering::new(vec![a]));
//! spec.add_tested(Ordering::new(vec![a, b]));
//! let f_ab = spec.add_fd_set(vec![Fd::functional(&[a], b)]);
//!
//! // "Preparation" is trivial — that is Simmen's advantage; the cost
//! // shows up later, inside every probe.
//! let fw = SimmenFramework::prepare(&spec);
//! let k_a = fw.key(&Ordering::new(vec![a])).unwrap();
//! let k_ab = fw.key(&Ordering::new(vec![a, b])).unwrap();
//!
//! let s = fw.produce(k_a);              // stream sorted by (a)
//! assert!(!fw.satisfies(s, k_ab));      // reduce + prefix test
//! let s = fw.infer(s, f_ab);            // extend the FD environment
//! assert!(fw.satisfies(s, k_ab));       // (a,b) reduces to (a) under a→b
//! ```

pub mod env;
pub mod oracle;
pub mod reduce;

pub use env::{EnvStore, FdEnv, FdEnvId};
pub use oracle::SimmenOrderKey;
pub use oracle::{SimmenFramework, SimmenState};
