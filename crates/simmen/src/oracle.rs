//! The Simmen-style order-optimization framework, exposing the same
//! plan-generation interface as `ofw_core::OrderingFramework` so the plan
//! generator can run with either implementation (§7's experiment setup).
//!
//! Interior mutability hides the caches behind `&self` methods — the
//! plan generator calls `infer`/`satisfies` through shared references
//! millions of times, and the caches are pure memoization. The storage
//! is **two-tier** so the baseline's *contention* cost under the
//! parallel DP driver is separated from its *algorithmic* Ω(n) cost:
//!
//! * a **read-mostly shared tier** (`RwLock`) holds the id-authoritative
//!   stores — the property interner and the FD-environment store. Ids
//!   handed out here are what [`SimmenState`]s carry, so every worker
//!   resolves against the same numbering; after a warm-up run the tier
//!   is read-only and probes share the read lock.
//! * **per-worker cache shards** (one mutex each, picked by thread id)
//!   hold the memoization maps — reduction, grouping closure, and
//!   environment extension. Workers never contend on each other's
//!   memoized probes; at worst two workers recompute the same reduction
//!   into their own shards, which costs duplicated work, never a
//!   different answer (all values are derived from the shared tier).
//!
//! Grouping support mirrors the combined framework: a plan node's
//! physical property may be a grouping (hash-aggregation output), and a
//! grouping requirement is tested by closing the node's implied grouping
//! set under its FD environment. The closure is computed
//! *incrementally*: an environment extends its derivation parent by one
//! FD set, so the closure for `(property, env)` starts from the cached
//! closure of `(property, parent)` and only chases consequences of the
//! added dependencies (semi-naive evaluation), instead of re-running the
//! full fixpoint per (state, environment) — still Ω(n) per fresh probe,
//! which is exactly the asymmetry the DFSM framework removes, but no
//! longer gratuitously so.

use crate::env::{EnvStore, FdEnvId};
use crate::reduce::reduce;
use ofw_common::{FxHashMap, FxHashSet, FxHasher, Interner};
use ofw_core::derive::apply_fd_grouping;
use ofw_core::fd::{Fd, FdSetId};
use ofw_core::ordering::Ordering;
use ofw_core::property::{Grouping, HeadTail, LogicalProperty};
use ofw_core::spec::InputSpec;
use ofw_core::ExplicitOrderings;
use std::hash::{Hash, Hasher};
use std::sync::{Mutex, RwLock};

/// Per-plan-node annotation under Simmen's scheme: the physical property
/// (interned ordering or grouping) plus the FD environment. Conceptually
/// this is Ω(n)-sized state; the handles point into shared stores whose
/// bytes are charged to [`SimmenFramework::memory_bytes`].
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimmenState {
    /// Interned physical property.
    pub phys: u32,
    /// Interned FD environment.
    pub env: FdEnvId,
}

impl std::fmt::Debug for SimmenState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}/{:?}", self.phys, self.env)
    }
}

/// Handle of an interesting property, pre-resolved once per query.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SimmenOrderKey(u32);

/// The read-mostly shared tier: the id-authoritative stores every
/// worker resolves against. Writes happen only when a genuinely new
/// property or environment appears — after a warm-up run, never.
struct SharedTier {
    props: Interner<LogicalProperty>,
    envs: EnvStore,
}

/// One worker's private memoization shard.
#[derive(Default)]
struct ShardCaches {
    /// Reduction cache: (interned ordering, environment) → reduced
    /// interned ordering — the paper's single most important tuning.
    reduce: FxHashMap<(u32, FdEnvId), u32>,
    /// Grouping cache: (interned property, environment) → set of
    /// groupings the stream satisfies under the environment.
    grouping: FxHashMap<(u32, FdEnvId), FxHashSet<Grouping>>,
    /// Environment-extension cache: (environment, FD set) → extended
    /// environment (fronting [`EnvStore::extend`]).
    extend: FxHashMap<(FdEnvId, FdSetId), FdEnvId>,
    /// Head/tail cache: (interned property, environment) → set of pairs
    /// the stream satisfies under the environment. Computed from
    /// scratch per (property, environment) via the explicit-set
    /// machinery — the Ω(n) price the baseline pays for a probe the
    /// DFSM answers with one bit.
    head_tail: FxHashMap<(u32, FdEnvId), FxHashSet<HeadTail>>,
    /// `contains` result cache: (physical property, environment,
    /// required key) → answer. Makes a warm probe one shard-mutex
    /// acquisition — what keeps the sharded two-tier design no slower
    /// than the old single-mutex layout on one thread.
    contains: FxHashMap<(u32, FdEnvId, u32), bool>,
}

/// Number of cache shards — comfortably above the work-stealing pool's
/// worker counts, so concurrent workers hash to distinct shards.
const CACHE_SHARDS: usize = 16;

/// The prepared Simmen-style framework for one query.
pub struct SimmenFramework {
    shared: RwLock<SharedTier>,
    shards: Vec<Mutex<ShardCaches>>,
    /// Interesting properties (orderings prefix-closed, groupings
    /// as-is), indexable by key.
    props: Vec<LogicalProperty>,
    prop_keys: FxHashMap<LogicalProperty, SimmenOrderKey>,
    producible: Vec<bool>,
    /// Interned physical-property id per key, fixed at preparation —
    /// `produce` is a pure lookup, no lock.
    phys_of_key: Vec<u32>,
}

impl SimmenFramework {
    /// "Preparation" for Simmen's algorithm is trivial (that is its
    /// advantage; the paper's point is that it loses during plan
    /// generation): intern the interesting properties and set up stores.
    pub fn prepare(spec: &InputSpec) -> Self {
        let mut shared = SharedTier {
            props: Interner::new(),
            envs: EnvStore::new(spec.fd_sets().to_vec()),
        };
        shared.props.intern(Ordering::empty().into());

        let mut props: Vec<LogicalProperty> = Vec::new();
        let mut prop_keys = FxHashMap::default();
        let mut producible = Vec::new();
        let mut phys_of_key = Vec::new();
        for (p, prod) in spec.interesting_closure() {
            prop_keys.insert(p.clone(), SimmenOrderKey(props.len() as u32));
            phys_of_key.push(shared.props.intern(p.clone()));
            props.push(p);
            producible.push(prod);
        }
        SimmenFramework {
            shared: RwLock::new(shared),
            shards: (0..CACHE_SHARDS).map(|_| Mutex::default()).collect(),
            props,
            prop_keys,
            producible,
            phys_of_key,
        }
    }

    /// The calling worker's cache shard (hashed thread id; collisions
    /// just share a shard — still correct, marginally more contended).
    fn shard(&self) -> &Mutex<ShardCaches> {
        let mut h = FxHasher::default();
        std::thread::current().id().hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Key of an interesting order (or a prefix of one).
    pub fn key(&self, o: &Ordering) -> Option<SimmenOrderKey> {
        self.prop_keys
            .get(&LogicalProperty::Ordering(o.clone()))
            .copied()
    }

    /// Key of an interesting grouping.
    pub fn grouping_key(&self, g: &Grouping) -> Option<SimmenOrderKey> {
        self.prop_keys
            .get(&LogicalProperty::Grouping(g.clone()))
            .copied()
    }

    /// Key of an interesting head/tail pair.
    pub fn head_tail_key(&self, h: &HeadTail) -> Option<SimmenOrderKey> {
        self.prop_keys
            .get(&LogicalProperty::HeadTail(h.clone()))
            .copied()
    }

    /// Whether the property behind `k` is in `O_P`.
    pub fn is_producible(&self, k: SimmenOrderKey) -> bool {
        self.producible[k.0 as usize]
    }

    /// State of an unordered stream with no dependencies.
    pub fn produce_empty(&self) -> SimmenState {
        SimmenState {
            phys: 0,
            env: FdEnvId(0),
        }
    }

    /// State of a stream physically shaped like the property behind `k`
    /// (sort / ordered-scan output for an ordering, hash-aggregation
    /// output for a grouping) with no dependencies yet. Pure lookup —
    /// every interesting property was interned at preparation.
    pub fn produce(&self, k: SimmenOrderKey) -> SimmenState {
        SimmenState {
            phys: self.phys_of_key[k.0 as usize],
            env: FdEnvId(0),
        }
    }

    /// `inferNewLogicalOrderings`: extends the node's FD environment.
    /// Fast path: the worker's own extension cache; slow path: one
    /// write-locked extension of the shared environment store.
    pub fn infer(&self, s: SimmenState, f: FdSetId) -> SimmenState {
        if let Some(&env) = self.shard().lock().unwrap().extend.get(&(s.env, f)) {
            return SimmenState { phys: s.phys, env };
        }
        let env = self.shared.write().unwrap().envs.extend(s.env, f);
        self.shard().lock().unwrap().extend.insert((s.env, f), env);
        SimmenState { phys: s.phys, env }
    }

    /// `contains`: for an ordering requirement, reduce both orderings
    /// under the environment and prefix-test (cached); a grouped stream
    /// satisfies no ordering. For a grouping requirement, close the
    /// stream's implied groupings under the environment (cached) and
    /// test membership.
    pub fn satisfies(&self, s: SimmenState, k: SimmenOrderKey) -> bool {
        if let Some(&hit) = self
            .shard()
            .lock()
            .unwrap()
            .contains
            .get(&(s.phys, s.env, k.0))
        {
            return hit;
        }
        let result = self.satisfies_uncached(s, k);
        self.shard()
            .lock()
            .unwrap()
            .contains
            .insert((s.phys, s.env, k.0), result);
        result
    }

    fn satisfies_uncached(&self, s: SimmenState, k: SimmenOrderKey) -> bool {
        match &self.props[k.0 as usize] {
            LogicalProperty::Ordering(_) => {
                // Grouped and head/tail-shaped streams satisfy no
                // ordering (their group blocks are unordered).
                if self
                    .shared
                    .read()
                    .unwrap()
                    .props
                    .resolve(s.phys)
                    .as_ordering()
                    .is_none()
                {
                    return false;
                }
                let required = self.phys_of_key[k.0 as usize];
                let rp = self.reduced(s.phys, s.env);
                let rr = self.reduced(required, s.env);
                let shared = self.shared.read().unwrap();
                let rp = match shared.props.resolve(rp).as_ordering() {
                    Some(o) => o.clone(),
                    None => return false,
                };
                let rr = shared.props.resolve(rr).as_ordering().cloned();
                drop(shared);
                rr.is_some_and(|rr| rr.is_prefix_of(&rp))
            }
            LogicalProperty::Grouping(required) => self.groupings_contain(s.phys, s.env, required),
            LogicalProperty::HeadTail(required) => self.head_tails_contain(s.phys, s.env, required),
        }
    }

    /// Membership probe against the cached head/tail set of the stream
    /// in physical property `phys` under `env`. Simmen's scheme has no
    /// compact representation for "grouped and sorted within groups", so
    /// the baseline materializes the full explicit property closure once
    /// per (property, environment) — persistent-FD semantics, like its
    /// grouping probe — and caches the pair set in the calling worker's
    /// shard.
    fn head_tails_contain(&self, phys: u32, env: FdEnvId, required: &HeadTail) -> bool {
        let mut shard = self.shard().lock().unwrap();
        if let Some(hit) = shard.head_tail.get(&(phys, env)) {
            return hit.contains(required);
        }
        // Lock order everywhere: shard first, shared (read) second.
        let shared = self.shared.read().unwrap();
        let mut truth = match shared.props.resolve(phys) {
            LogicalProperty::Ordering(o) => ExplicitOrderings::from_physical(o),
            LogicalProperty::Grouping(g) => ExplicitOrderings::from_grouping(g),
            LogicalProperty::HeadTail(h) => ExplicitOrderings::from_head_tail(h),
        };
        let fds = shared.envs.env(env).fds.to_vec();
        drop(shared);
        truth.close_under(&fds);
        let set: FxHashSet<HeadTail> = truth.iter_head_tails().cloned().collect();
        let hit = set.contains(required);
        shard.head_tail.insert((phys, env), set);
        hit
    }

    /// Cached reduction of the interned ordering `phys` under `env`:
    /// shard-local memoization over the shared tier (a cold shard
    /// recomputes, re-interning resolves to the same shared id).
    fn reduced(&self, phys: u32, env: FdEnvId) -> u32 {
        if let Some(&hit) = self.shard().lock().unwrap().reduce.get(&(phys, env)) {
            return hit;
        }
        let (o, fds) = {
            let shared = self.shared.read().unwrap();
            let o = shared
                .props
                .resolve(phys)
                .as_ordering()
                .expect("reduction is only defined on orderings")
                .clone();
            let fds: Vec<Fd> = shared.envs.env(env).fds.to_vec();
            (o, fds)
        };
        let r: LogicalProperty = reduce(&o, &fds).into();
        // Read-first interning: warm runs never take the write lock.
        // (The read guard must drop before the write is attempted.)
        let existing = { self.shared.read().unwrap().props.get(&r) };
        let id = match existing {
            Some(id) => id,
            None => self.shared.write().unwrap().props.intern(r),
        };
        self.shard().lock().unwrap().reduce.insert((phys, env), id);
        id
    }

    /// Plan comparability (§7): same physical property, environment a
    /// superset — Simmen's scheme cannot see that extra dependencies are
    /// irrelevant, which is why it prunes fewer plans.
    pub fn dominates(&self, a: SimmenState, b: SimmenState) -> bool {
        if a.phys != b.phys {
            return false;
        }
        if a.env == b.env {
            return true;
        }
        self.shared.read().unwrap().envs.is_superset(a.env, b.env)
    }

    /// Bytes of order-annotation storage for a plan with
    /// `num_plan_nodes` nodes: the per-node states plus the shared
    /// interned environments, properties and the memoization caches
    /// (all shards).
    pub fn memory_bytes(&self, num_plan_nodes: usize) -> usize {
        // Lock order everywhere: shard first, shared second — walk the
        // shards *before* taking the shared guard (holding shared while
        // acquiring shards would be the ABBA inversion of the probe
        // paths, which hold a shard while taking a shared read).
        let mut shard_bytes = 0usize;
        for shard in &self.shards {
            let shard = shard.lock().unwrap();
            shard_bytes += shard
                .grouping
                .values()
                .map(|set| {
                    std::mem::size_of::<(u32, FdEnvId)>()
                        + set
                            .iter()
                            .map(|g| g.heap_bytes() + std::mem::size_of::<Grouping>())
                            .sum::<usize>()
                })
                .sum::<usize>();
            shard_bytes += shard.reduce.len()
                * (std::mem::size_of::<(u32, FdEnvId)>() + std::mem::size_of::<u32>());
            shard_bytes += shard.extend.len()
                * (std::mem::size_of::<(FdEnvId, FdSetId)>() + std::mem::size_of::<FdEnvId>());
            shard_bytes += shard.contains.len()
                * (std::mem::size_of::<(u32, FdEnvId, u32)>() + std::mem::size_of::<bool>());
            shard_bytes += shard
                .head_tail
                .values()
                .map(|set| {
                    std::mem::size_of::<(u32, FdEnvId)>()
                        + set
                            .iter()
                            .map(|h| h.heap_bytes() + std::mem::size_of::<HeadTail>())
                            .sum::<usize>()
                })
                .sum::<usize>();
        }
        let shared = self.shared.read().unwrap();
        let prop_bytes: usize = shared
            .props
            .iter()
            .map(|(_, p)| p.heap_bytes() + std::mem::size_of::<LogicalProperty>())
            .sum();
        num_plan_nodes * std::mem::size_of::<SimmenState>()
            + shared.envs.memory_bytes()
            + prop_bytes
            + shard_bytes
    }

    /// All interesting *orderings* with their keys.
    pub fn orders(&self) -> impl Iterator<Item = (&Ordering, SimmenOrderKey)> {
        self.props
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_ordering().map(|o| (o, SimmenOrderKey(i as u32))))
    }

    /// All interesting *groupings* with their keys.
    pub fn groupings(&self) -> impl Iterator<Item = (&Grouping, SimmenOrderKey)> {
        self.props
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_grouping().map(|g| (g, SimmenOrderKey(i as u32))))
    }

    /// Reduction-cache size across all shards (for diagnostics).
    pub fn cache_entries(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().reduce.len())
            .sum()
    }

    /// Membership probe against the cached grouping set of the stream in
    /// physical property `phys` under `env`: prefix attribute sets of the
    /// physical ordering (or the grouping key itself), closed under the
    /// environment's dependencies — the persistent-FD ground truth,
    /// probed in place once computed.
    ///
    /// Closures are built *incrementally* along the environment's
    /// derivation chain: `env` extends its parent by exactly one FD set,
    /// so the closure under `env` is the parent's closure (cached or
    /// computed on the way) plus the semi-naive delta of the added
    /// dependencies. Every environment on the chain gets its closure
    /// cached — in the calling worker's own shard, so a probe on a deep
    /// environment both reuses and seeds the shallower ones without
    /// touching any other worker's cache.
    fn groupings_contain(&self, phys: u32, env: FdEnvId, required: &Grouping) -> bool {
        let mut shard = self.shard().lock().unwrap();
        if let Some(hit) = shard.grouping.get(&(phys, env)) {
            return hit.contains(required);
        }
        // Lock order everywhere: shard first, shared (read) second.
        let shared = self.shared.read().unwrap();
        // Walk up the derivation chain to the nearest cached ancestor
        // (or the root environment).
        let mut chain: Vec<(FdEnvId, FdSetId)> = Vec::new();
        let mut anchor = env;
        while !shard.grouping.contains_key(&(phys, anchor)) {
            match shared.envs.parent(anchor) {
                Some((parent, added)) => {
                    chain.push((anchor, added));
                    anchor = parent;
                }
                None => break,
            }
        }
        // Closure at the anchor: cached, or the base set of the physical
        // property closed under the (possibly empty) anchor environment.
        let mut set: FxHashSet<Grouping> = match shard.grouping.get(&(phys, anchor)) {
            Some(hit) => hit.clone(),
            None => {
                let mut base: FxHashSet<Grouping> = FxHashSet::default();
                match shared.props.resolve(phys) {
                    LogicalProperty::Ordering(o) => {
                        for len in 1..=o.len() {
                            base.insert(Grouping::new(o.attrs()[..len].to_vec()));
                        }
                    }
                    LogicalProperty::Grouping(g) => {
                        base.insert(g.clone());
                    }
                    LogicalProperty::HeadTail(h) => {
                        // Grouped by the head, and by the head plus any
                        // absorbed within-group-sorted tail prefix.
                        base.extend(h.absorbed_heads());
                    }
                }
                let fds = shared.envs.env(anchor).fds.to_vec();
                let seed: Vec<Grouping> = base.iter().cloned().collect();
                close_under(&mut base, seed, &fds, &fds);
                shard.grouping.insert((phys, anchor), base.clone());
                base
            }
        };
        // Extend one derivation step at a time, reusing everything
        // already closed: existing members only need the *added* set's
        // dependencies applied; whatever that derives is then chased
        // under the full environment.
        for &(step_env, added) in chain.iter().rev() {
            let new_fds = shared.envs.set_fds(added).to_vec();
            let all_fds = shared.envs.env(step_env).fds.to_vec();
            let seed: Vec<Grouping> = set.iter().cloned().collect();
            close_under(&mut set, seed, &new_fds, &all_fds);
            shard.grouping.insert((phys, step_env), set.clone());
        }
        set.contains(required)
    }
}

/// Semi-naive closure step: applies `delta_fds` to every seed grouping,
/// then chases each *newly derived* grouping under `all_fds` to the
/// fixpoint. When `delta_fds == all_fds` and the seeds are the whole
/// set, this is the classic from-scratch fixpoint.
fn close_under(
    set: &mut FxHashSet<Grouping>,
    seeds: Vec<Grouping>,
    delta_fds: &[Fd],
    all_fds: &[Fd],
) {
    let mut buf: Vec<Grouping> = Vec::new();
    let mut fresh: Vec<Grouping> = Vec::new();
    for cur in &seeds {
        for fd in delta_fds {
            buf.clear();
            apply_fd_grouping(cur, fd, &mut buf);
            for d in buf.drain(..) {
                if !d.is_empty() && set.insert(d.clone()) {
                    fresh.push(d);
                }
            }
        }
    }
    while let Some(cur) = fresh.pop() {
        for fd in all_fds {
            buf.clear();
            apply_fd_grouping(&cur, fd, &mut buf);
            for d in buf.drain(..) {
                if !d.is_empty() && set.insert(d.clone()) {
                    fresh.push(d);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofw_catalog::AttrId;
    use ofw_core::fd::Fd;

    const A: AttrId = AttrId(0);
    const B: AttrId = AttrId(1);
    const C: AttrId = AttrId(2);
    const D: AttrId = AttrId(3);

    fn o(ids: &[AttrId]) -> Ordering {
        Ordering::new(ids.to_vec())
    }

    fn g(ids: &[AttrId]) -> Grouping {
        Grouping::new(ids.to_vec())
    }

    fn running_example() -> (InputSpec, FdSetId, FdSetId) {
        let mut spec = InputSpec::new();
        spec.add_produced(o(&[B]));
        spec.add_produced(o(&[A, B]));
        spec.add_tested(o(&[A, B, C]));
        let f_bc = spec.add_fd_set(vec![Fd::functional(&[B], C)]);
        let f_bd = spec.add_fd_set(vec![Fd::functional(&[B], D)]);
        (spec, f_bc, f_bd)
    }

    #[test]
    fn mirrors_core_walkthrough() {
        let (spec, f_bc, _) = running_example();
        let fw = SimmenFramework::prepare(&spec);
        let k_a = fw.key(&o(&[A])).unwrap();
        let k_ab = fw.key(&o(&[A, B])).unwrap();
        let k_abc = fw.key(&o(&[A, B, C])).unwrap();

        let s = fw.produce(k_ab);
        assert!(fw.satisfies(s, k_a));
        assert!(fw.satisfies(s, k_ab));
        assert!(!fw.satisfies(s, k_abc));

        let s2 = fw.infer(s, f_bc);
        assert!(fw.satisfies(s2, k_abc));
        assert!(fw.satisfies(s2, k_ab));
        assert_eq!(fw.infer(s2, f_bc), s2);
    }

    #[test]
    fn domination_needs_same_ordering_and_env_superset() {
        let (spec, f_bc, f_bd) = running_example();
        let fw = SimmenFramework::prepare(&spec);
        let k_ab = fw.key(&o(&[A, B])).unwrap();
        let base = fw.produce(k_ab);
        let with_bc = fw.infer(base, f_bc);
        let with_both = fw.infer(with_bc, f_bd);
        assert!(fw.dominates(with_bc, base));
        assert!(fw.dominates(with_both, with_bc));
        assert!(!fw.dominates(base, with_bc));
        // Unlike the DFSM framework, Simmen's scheme cannot see that
        // b→d is irrelevant: with_both does NOT equal with_bc, so two
        // otherwise identical plans stay alive.
        assert_ne!(with_both, with_bc);
        // Different physical orderings never compare.
        let k_b = fw.key(&o(&[B])).unwrap();
        assert!(!fw.dominates(fw.produce(k_b), base));
    }

    #[test]
    fn reduce_cache_fills_and_memory_is_accounted() {
        let (spec, f_bc, _) = running_example();
        let fw = SimmenFramework::prepare(&spec);
        let k_ab = fw.key(&o(&[A, B])).unwrap();
        let m0 = fw.memory_bytes(0);
        let s = fw.infer(fw.produce(k_ab), f_bc);
        let k_abc = fw.key(&o(&[A, B, C])).unwrap();
        assert!(fw.satisfies(s, k_abc));
        assert!(fw.satisfies(s, k_abc)); // second probe hits the cache
        assert!(fw.cache_entries() >= 2);
        assert!(fw.memory_bytes(0) > m0);
        // Per-plan-node cost is the 8-byte state.
        assert_eq!(
            fw.memory_bytes(100) - fw.memory_bytes(0),
            100 * std::mem::size_of::<SimmenState>()
        );
    }

    #[test]
    fn produce_empty_satisfies_nothing_until_constants() {
        let mut spec = InputSpec::new();
        spec.add_produced(o(&[A]));
        let f = spec.add_fd_set(vec![Fd::constant(A)]);
        let fw = SimmenFramework::prepare(&spec);
        let k_a = fw.key(&o(&[A])).unwrap();
        let s = fw.produce_empty();
        assert!(!fw.satisfies(s, k_a));
        let s2 = fw.infer(s, f);
        assert!(fw.satisfies(s2, k_a), "a=const ⇒ stream ordered by (a)");
    }

    #[test]
    fn prefixes_of_interesting_orders_have_keys() {
        let (spec, _, _) = running_example();
        let fw = SimmenFramework::prepare(&spec);
        assert!(fw.key(&o(&[A])).is_some());
        assert!(fw.key(&o(&[C])).is_none());
        assert!(fw.is_producible(fw.key(&o(&[B])).unwrap()));
        assert!(!fw.is_producible(fw.key(&o(&[A])).unwrap()));
    }

    #[test]
    fn grouping_support_mirrors_the_combined_framework() {
        let mut spec = InputSpec::new();
        spec.add_produced(o(&[A, B]));
        spec.add_produced(g(&[A, B]));
        spec.add_tested(g(&[A, B, C]));
        let f_bc = spec.add_fd_set(vec![Fd::functional(&[B], C)]);
        let fw = SimmenFramework::prepare(&spec);

        let k_ab = fw.key(&o(&[A, B])).unwrap();
        let kg_ab = fw.grouping_key(&g(&[A, B])).unwrap();
        let kg_abc = fw.grouping_key(&g(&[A, B, C])).unwrap();
        assert!(fw.is_producible(kg_ab));
        assert!(!fw.is_producible(kg_abc));

        // Sorted stream: grouped by every prefix set; FD extends it.
        let s = fw.produce(k_ab);
        assert!(fw.satisfies(s, kg_ab));
        assert!(!fw.satisfies(s, kg_abc));
        let s2 = fw.infer(s, f_bc);
        assert!(fw.satisfies(s2, kg_abc));

        // Hash-grouped stream: its grouping, but no ordering.
        let sg = fw.produce(kg_ab);
        assert!(fw.satisfies(sg, kg_ab));
        assert!(!fw.satisfies(sg, k_ab));
        assert!(fw.satisfies(fw.infer(sg, f_bc), kg_abc));
        // Different physical kinds never dominate each other.
        assert!(!fw.dominates(s, sg));
        assert_eq!(fw.groupings().count(), 2);
    }

    #[test]
    fn sharded_caches_agree_across_threads() {
        // Every worker memoizes into its own shard, but all ids come
        // from the shared tier — so any thread's probe answers (and the
        // states it builds) must be identical to the serial ones, warm
        // or cold.
        let (spec, f_bc, f_bd) = running_example();
        let fw = SimmenFramework::prepare(&spec);
        let k_ab = fw.key(&o(&[A, B])).unwrap();
        let k_abc = fw.key(&o(&[A, B, C])).unwrap();
        let probe = |fw: &SimmenFramework| -> (SimmenState, Vec<bool>) {
            let s = fw.infer(fw.infer(fw.produce(k_ab), f_bc), f_bd);
            let answers = vec![
                fw.satisfies(s, k_ab),
                fw.satisfies(s, k_abc),
                fw.dominates(s, fw.produce(k_ab)),
            ];
            (s, answers)
        };
        let (serial_state, serial_answers) = probe(&fw);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let (s, answers) = probe(&fw);
                    assert_eq!(s, serial_state, "shared-tier ids are authoritative");
                    assert_eq!(answers, serial_answers);
                });
            }
        });
        // The per-thread shards each memoized their own reductions.
        assert!(fw.cache_entries() >= 2);
        assert!(fw.memory_bytes(0) > 0);
    }

    #[test]
    fn incremental_closure_matches_stepwise_and_fresh_probes() {
        // A chain of dependencies a→b→c→d. The grouping closure of a
        // stream ordered by (a) must grow one attribute per applied FD
        // set, and it must not matter whether intermediate environments
        // were probed (warm parent-chain cache) or only the deepest one
        // (closure built through the chain in one go).
        let mut spec = InputSpec::new();
        spec.add_produced(o(&[A]));
        spec.add_tested(g(&[A, B]));
        spec.add_tested(g(&[A, B, C]));
        spec.add_tested(g(&[A, B, C, D]));
        let f_ab = spec.add_fd_set(vec![Fd::functional(&[A], B)]);
        let f_bc = spec.add_fd_set(vec![Fd::functional(&[B], C)]);
        let f_cd = spec.add_fd_set(vec![Fd::functional(&[C], D)]);

        let probe_all = |fw: &SimmenFramework, s: SimmenState| -> Vec<bool> {
            [g(&[A, B]), g(&[A, B, C]), g(&[A, B, C, D])]
                .into_iter()
                .map(|gr| fw.satisfies(s, fw.grouping_key(&gr).unwrap()))
                .collect()
        };

        // Stepwise: probe after every single infer (caches every chain
        // link as it appears).
        let fw = SimmenFramework::prepare(&spec);
        let k_a = fw.key(&o(&[A])).unwrap();
        let s0 = fw.produce(k_a);
        let s1 = fw.infer(s0, f_ab);
        assert_eq!(probe_all(&fw, s1), vec![true, false, false]);
        let s2 = fw.infer(s1, f_bc);
        assert_eq!(probe_all(&fw, s2), vec![true, true, false]);
        let s3 = fw.infer(s2, f_cd);
        assert_eq!(probe_all(&fw, s3), vec![true, true, true]);

        // Fresh framework, deepest environment probed first: the chain
        // walk computes ancestors on the way — same answers.
        let fresh = SimmenFramework::prepare(&spec);
        let t3 = fresh.infer(
            fresh.infer(fresh.infer(fresh.produce(k_a), f_ab), f_bc),
            f_cd,
        );
        assert_eq!(probe_all(&fresh, t3), vec![true, true, true]);
        // ...and the intermediate environments were cached on the way,
        // so shallower probes agree without recomputation.
        let t1 = fresh.infer(fresh.produce(k_a), f_ab);
        assert_eq!(probe_all(&fresh, t1), vec![true, false, false]);
    }
}
