//! The Simmen-style order-optimization framework, exposing the same
//! plan-generation interface as `ofw_core::OrderingFramework` so the plan
//! generator can run with either implementation (§7's experiment setup).
//!
//! Interior mutability (`RefCell`) hides the caches behind `&self`
//! methods — the plan generator calls `infer`/`satisfies` through shared
//! references millions of times, and the caches are pure memoization.
//!
//! Grouping support mirrors the combined framework: a plan node's
//! physical property may be a grouping (hash-aggregation output), and a
//! grouping requirement is tested by closing the node's implied grouping
//! set under its FD environment — an Ω(n)-per-probe computation (cached),
//! which is exactly the asymmetry the DFSM framework removes.

use crate::env::{EnvStore, FdEnvId};
use crate::reduce::reduce;
use ofw_common::{FxHashMap, FxHashSet, Interner};
use ofw_core::derive::apply_fd_grouping;
use ofw_core::fd::FdSetId;
use ofw_core::ordering::Ordering;
use ofw_core::property::{Grouping, LogicalProperty};
use ofw_core::spec::InputSpec;
use std::cell::RefCell;

/// Per-plan-node annotation under Simmen's scheme: the physical property
/// (interned ordering or grouping) plus the FD environment. Conceptually
/// this is Ω(n)-sized state; the handles point into shared stores whose
/// bytes are charged to [`SimmenFramework::memory_bytes`].
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimmenState {
    /// Interned physical property.
    pub phys: u32,
    /// Interned FD environment.
    pub env: FdEnvId,
}

impl std::fmt::Debug for SimmenState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}/{:?}", self.phys, self.env)
    }
}

/// Handle of an interesting property, pre-resolved once per query.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SimmenOrderKey(u32);

struct Caches {
    props: Interner<LogicalProperty>,
    envs: EnvStore,
    /// Reduction cache: (interned ordering, environment) → reduced
    /// interned ordering — the paper's single most important tuning.
    reduce_cache: FxHashMap<(u32, FdEnvId), u32>,
    /// Grouping cache: (interned property, environment) → set of
    /// groupings the stream satisfies under the environment.
    grouping_cache: FxHashMap<(u32, FdEnvId), FxHashSet<Grouping>>,
}

/// The prepared Simmen-style framework for one query.
pub struct SimmenFramework {
    caches: RefCell<Caches>,
    /// Interesting properties (orderings prefix-closed, groupings
    /// as-is), indexable by key.
    props: Vec<LogicalProperty>,
    prop_keys: FxHashMap<LogicalProperty, SimmenOrderKey>,
    producible: Vec<bool>,
}

impl SimmenFramework {
    /// "Preparation" for Simmen's algorithm is trivial (that is its
    /// advantage; the paper's point is that it loses during plan
    /// generation): intern the interesting properties and set up stores.
    pub fn prepare(spec: &InputSpec) -> Self {
        let mut caches = Caches {
            props: Interner::new(),
            envs: EnvStore::new(spec.fd_sets().to_vec()),
            reduce_cache: FxHashMap::default(),
            grouping_cache: FxHashMap::default(),
        };
        caches.props.intern(Ordering::empty().into());

        let mut props: Vec<LogicalProperty> = Vec::new();
        let mut prop_keys = FxHashMap::default();
        let mut producible = Vec::new();
        for (p, prod) in spec.interesting_closure() {
            prop_keys.insert(p.clone(), SimmenOrderKey(props.len() as u32));
            caches.props.intern(p.clone());
            props.push(p);
            producible.push(prod);
        }
        SimmenFramework {
            caches: RefCell::new(caches),
            props,
            prop_keys,
            producible,
        }
    }

    /// Key of an interesting order (or a prefix of one).
    pub fn key(&self, o: &Ordering) -> Option<SimmenOrderKey> {
        self.prop_keys
            .get(&LogicalProperty::Ordering(o.clone()))
            .copied()
    }

    /// Key of an interesting grouping.
    pub fn grouping_key(&self, g: &Grouping) -> Option<SimmenOrderKey> {
        self.prop_keys
            .get(&LogicalProperty::Grouping(g.clone()))
            .copied()
    }

    /// Whether the property behind `k` is in `O_P`.
    pub fn is_producible(&self, k: SimmenOrderKey) -> bool {
        self.producible[k.0 as usize]
    }

    /// State of an unordered stream with no dependencies.
    pub fn produce_empty(&self) -> SimmenState {
        SimmenState {
            phys: 0,
            env: FdEnvId(0),
        }
    }

    /// State of a stream physically shaped like the property behind `k`
    /// (sort / ordered-scan output for an ordering, hash-aggregation
    /// output for a grouping) with no dependencies yet.
    pub fn produce(&self, k: SimmenOrderKey) -> SimmenState {
        let mut caches = self.caches.borrow_mut();
        let phys = caches.props.intern(self.props[k.0 as usize].clone());
        SimmenState {
            phys,
            env: FdEnvId(0),
        }
    }

    /// `inferNewLogicalOrderings`: extends the node's FD environment.
    pub fn infer(&self, s: SimmenState, f: FdSetId) -> SimmenState {
        let mut caches = self.caches.borrow_mut();
        let env = caches.envs.extend(s.env, f);
        SimmenState { phys: s.phys, env }
    }

    /// `contains`: for an ordering requirement, reduce both orderings
    /// under the environment and prefix-test (cached); a grouped stream
    /// satisfies no ordering. For a grouping requirement, close the
    /// stream's implied groupings under the environment (cached) and
    /// test membership.
    pub fn satisfies(&self, s: SimmenState, k: SimmenOrderKey) -> bool {
        let mut caches = self.caches.borrow_mut();
        match &self.props[k.0 as usize] {
            LogicalProperty::Ordering(required) => {
                if caches.props.resolve(s.phys).is_grouping() {
                    return false;
                }
                let required = caches
                    .props
                    .get(&required.clone().into())
                    .expect("interesting orders are interned");
                let rp = reduced(&mut caches, s.phys, s.env);
                let rr = reduced(&mut caches, required, s.env);
                let rp = match caches.props.resolve(rp).as_ordering() {
                    Some(o) => o.clone(),
                    None => return false,
                };
                let rr = caches.props.resolve(rr).as_ordering().cloned();
                rr.is_some_and(|rr| rr.is_prefix_of(&rp))
            }
            LogicalProperty::Grouping(required) => {
                groupings_contain(&mut caches, s.phys, s.env, required)
            }
        }
    }

    /// Plan comparability (§7): same physical property, environment a
    /// superset — Simmen's scheme cannot see that extra dependencies are
    /// irrelevant, which is why it prunes fewer plans.
    pub fn dominates(&self, a: SimmenState, b: SimmenState) -> bool {
        if a.phys != b.phys {
            return false;
        }
        self.caches.borrow().envs.is_superset(a.env, b.env)
    }

    /// Bytes of order-annotation storage for a plan with
    /// `num_plan_nodes` nodes: the per-node states plus the shared
    /// interned environments, properties and the memoization caches.
    pub fn memory_bytes(&self, num_plan_nodes: usize) -> usize {
        let caches = self.caches.borrow();
        let prop_bytes: usize = caches
            .props
            .iter()
            .map(|(_, p)| p.heap_bytes() + std::mem::size_of::<LogicalProperty>())
            .sum();
        let grouping_cache_bytes: usize = caches
            .grouping_cache
            .values()
            .map(|set| {
                std::mem::size_of::<(u32, FdEnvId)>()
                    + set
                        .iter()
                        .map(|g| g.heap_bytes() + std::mem::size_of::<Grouping>())
                        .sum::<usize>()
            })
            .sum();
        num_plan_nodes * std::mem::size_of::<SimmenState>()
            + caches.envs.memory_bytes()
            + prop_bytes
            + grouping_cache_bytes
            + caches.reduce_cache.len()
                * (std::mem::size_of::<(u32, FdEnvId)>() + std::mem::size_of::<u32>())
    }

    /// All interesting *orderings* with their keys.
    pub fn orders(&self) -> impl Iterator<Item = (&Ordering, SimmenOrderKey)> {
        self.props
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_ordering().map(|o| (o, SimmenOrderKey(i as u32))))
    }

    /// All interesting *groupings* with their keys.
    pub fn groupings(&self) -> impl Iterator<Item = (&Grouping, SimmenOrderKey)> {
        self.props
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_grouping().map(|g| (g, SimmenOrderKey(i as u32))))
    }

    /// Reduction-cache size (for diagnostics).
    pub fn cache_entries(&self) -> usize {
        self.caches.borrow().reduce_cache.len()
    }
}

/// Cached reduction of the interned ordering `phys` under `env`.
fn reduced(caches: &mut Caches, phys: u32, env: FdEnvId) -> u32 {
    if let Some(&hit) = caches.reduce_cache.get(&(phys, env)) {
        return hit;
    }
    let o = caches
        .props
        .resolve(phys)
        .as_ordering()
        .expect("reduction is only defined on orderings")
        .clone();
    let fds: Vec<ofw_core::fd::Fd> = caches.envs.env(env).fds.to_vec();
    let r = reduce(&o, &fds);
    let id = caches.props.intern(r.into());
    caches.reduce_cache.insert((phys, env), id);
    id
}

/// Membership probe against the cached grouping set of the stream in
/// physical property `phys` under `env`: prefix attribute sets of the
/// physical ordering (or the grouping key itself), closed under the
/// environment's dependencies — the persistent-FD ground truth,
/// computed the expensive way once per (property, environment) and
/// probed in place afterwards.
fn groupings_contain(caches: &mut Caches, phys: u32, env: FdEnvId, required: &Grouping) -> bool {
    if let Some(hit) = caches.grouping_cache.get(&(phys, env)) {
        return hit.contains(required);
    }
    let mut set: FxHashSet<Grouping> = FxHashSet::default();
    match caches.props.resolve(phys) {
        LogicalProperty::Ordering(o) => {
            for len in 1..=o.len() {
                set.insert(Grouping::new(o.attrs()[..len].to_vec()));
            }
        }
        LogicalProperty::Grouping(g) => {
            set.insert(g.clone());
        }
    }
    let fds: Vec<ofw_core::fd::Fd> = caches.envs.env(env).fds.to_vec();
    let mut work: Vec<Grouping> = set.iter().cloned().collect();
    let mut buf: Vec<Grouping> = Vec::new();
    while let Some(cur) = work.pop() {
        for fd in &fds {
            buf.clear();
            apply_fd_grouping(&cur, fd, &mut buf);
            for d in buf.drain(..) {
                if !d.is_empty() && set.insert(d.clone()) {
                    work.push(d);
                }
            }
        }
    }
    let contains = set.contains(required);
    caches.grouping_cache.insert((phys, env), set);
    contains
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofw_catalog::AttrId;
    use ofw_core::fd::Fd;

    const A: AttrId = AttrId(0);
    const B: AttrId = AttrId(1);
    const C: AttrId = AttrId(2);
    const D: AttrId = AttrId(3);

    fn o(ids: &[AttrId]) -> Ordering {
        Ordering::new(ids.to_vec())
    }

    fn g(ids: &[AttrId]) -> Grouping {
        Grouping::new(ids.to_vec())
    }

    fn running_example() -> (InputSpec, FdSetId, FdSetId) {
        let mut spec = InputSpec::new();
        spec.add_produced(o(&[B]));
        spec.add_produced(o(&[A, B]));
        spec.add_tested(o(&[A, B, C]));
        let f_bc = spec.add_fd_set(vec![Fd::functional(&[B], C)]);
        let f_bd = spec.add_fd_set(vec![Fd::functional(&[B], D)]);
        (spec, f_bc, f_bd)
    }

    #[test]
    fn mirrors_core_walkthrough() {
        let (spec, f_bc, _) = running_example();
        let fw = SimmenFramework::prepare(&spec);
        let k_a = fw.key(&o(&[A])).unwrap();
        let k_ab = fw.key(&o(&[A, B])).unwrap();
        let k_abc = fw.key(&o(&[A, B, C])).unwrap();

        let s = fw.produce(k_ab);
        assert!(fw.satisfies(s, k_a));
        assert!(fw.satisfies(s, k_ab));
        assert!(!fw.satisfies(s, k_abc));

        let s2 = fw.infer(s, f_bc);
        assert!(fw.satisfies(s2, k_abc));
        assert!(fw.satisfies(s2, k_ab));
        assert_eq!(fw.infer(s2, f_bc), s2);
    }

    #[test]
    fn domination_needs_same_ordering_and_env_superset() {
        let (spec, f_bc, f_bd) = running_example();
        let fw = SimmenFramework::prepare(&spec);
        let k_ab = fw.key(&o(&[A, B])).unwrap();
        let base = fw.produce(k_ab);
        let with_bc = fw.infer(base, f_bc);
        let with_both = fw.infer(with_bc, f_bd);
        assert!(fw.dominates(with_bc, base));
        assert!(fw.dominates(with_both, with_bc));
        assert!(!fw.dominates(base, with_bc));
        // Unlike the DFSM framework, Simmen's scheme cannot see that
        // b→d is irrelevant: with_both does NOT equal with_bc, so two
        // otherwise identical plans stay alive.
        assert_ne!(with_both, with_bc);
        // Different physical orderings never compare.
        let k_b = fw.key(&o(&[B])).unwrap();
        assert!(!fw.dominates(fw.produce(k_b), base));
    }

    #[test]
    fn reduce_cache_fills_and_memory_is_accounted() {
        let (spec, f_bc, _) = running_example();
        let fw = SimmenFramework::prepare(&spec);
        let k_ab = fw.key(&o(&[A, B])).unwrap();
        let m0 = fw.memory_bytes(0);
        let s = fw.infer(fw.produce(k_ab), f_bc);
        let k_abc = fw.key(&o(&[A, B, C])).unwrap();
        assert!(fw.satisfies(s, k_abc));
        assert!(fw.satisfies(s, k_abc)); // second probe hits the cache
        assert!(fw.cache_entries() >= 2);
        assert!(fw.memory_bytes(0) > m0);
        // Per-plan-node cost is the 8-byte state.
        assert_eq!(
            fw.memory_bytes(100) - fw.memory_bytes(0),
            100 * std::mem::size_of::<SimmenState>()
        );
    }

    #[test]
    fn produce_empty_satisfies_nothing_until_constants() {
        let mut spec = InputSpec::new();
        spec.add_produced(o(&[A]));
        let f = spec.add_fd_set(vec![Fd::constant(A)]);
        let fw = SimmenFramework::prepare(&spec);
        let k_a = fw.key(&o(&[A])).unwrap();
        let s = fw.produce_empty();
        assert!(!fw.satisfies(s, k_a));
        let s2 = fw.infer(s, f);
        assert!(fw.satisfies(s2, k_a), "a=const ⇒ stream ordered by (a)");
    }

    #[test]
    fn prefixes_of_interesting_orders_have_keys() {
        let (spec, _, _) = running_example();
        let fw = SimmenFramework::prepare(&spec);
        assert!(fw.key(&o(&[A])).is_some());
        assert!(fw.key(&o(&[C])).is_none());
        assert!(fw.is_producible(fw.key(&o(&[B])).unwrap()));
        assert!(!fw.is_producible(fw.key(&o(&[A])).unwrap()));
    }

    #[test]
    fn grouping_support_mirrors_the_combined_framework() {
        let mut spec = InputSpec::new();
        spec.add_produced(o(&[A, B]));
        spec.add_produced(g(&[A, B]));
        spec.add_tested(g(&[A, B, C]));
        let f_bc = spec.add_fd_set(vec![Fd::functional(&[B], C)]);
        let fw = SimmenFramework::prepare(&spec);

        let k_ab = fw.key(&o(&[A, B])).unwrap();
        let kg_ab = fw.grouping_key(&g(&[A, B])).unwrap();
        let kg_abc = fw.grouping_key(&g(&[A, B, C])).unwrap();
        assert!(fw.is_producible(kg_ab));
        assert!(!fw.is_producible(kg_abc));

        // Sorted stream: grouped by every prefix set; FD extends it.
        let s = fw.produce(k_ab);
        assert!(fw.satisfies(s, kg_ab));
        assert!(!fw.satisfies(s, kg_abc));
        let s2 = fw.infer(s, f_bc);
        assert!(fw.satisfies(s2, kg_abc));

        // Hash-grouped stream: its grouping, but no ordering.
        let sg = fw.produce(kg_ab);
        assert!(fw.satisfies(sg, kg_ab));
        assert!(!fw.satisfies(sg, k_ab));
        assert!(fw.satisfies(fw.infer(sg, f_bc), kg_abc));
        // Different physical kinds never dominate each other.
        assert!(!fw.dominates(s, sg));
        assert_eq!(fw.groupings().count(), 2);
    }
}
