//! The Simmen-style order-optimization framework, exposing the same
//! plan-generation interface as `ofw_core::OrderingFramework` so the plan
//! generator can run with either implementation (§7's experiment setup).
//!
//! Interior mutability (`RefCell`) hides the caches behind `&self`
//! methods — the plan generator calls `infer`/`satisfies` through shared
//! references millions of times, and the caches are pure memoization.

use crate::env::{EnvStore, FdEnvId};
use crate::reduce::reduce;
use ofw_common::{FxHashMap, Interner};
use ofw_core::fd::FdSetId;
use ofw_core::ordering::Ordering;
use ofw_core::spec::InputSpec;
use std::cell::RefCell;

/// Per-plan-node annotation under Simmen's scheme: the physical ordering
/// (interned) plus the FD environment. Conceptually this is
/// Ω(n)-sized state; the handles point into shared stores whose bytes
/// are charged to [`SimmenFramework::memory_bytes`].
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimmenState {
    /// Interned physical ordering.
    pub phys: u32,
    /// Interned FD environment.
    pub env: FdEnvId,
}

impl std::fmt::Debug for SimmenState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}/{:?}", self.phys, self.env)
    }
}

/// Handle of an interesting order, pre-resolved once per query.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SimmenOrderKey(u32);

struct Caches {
    orderings: Interner<Ordering>,
    envs: EnvStore,
    /// Reduction cache: (interned ordering, environment) → reduced
    /// interned ordering — the paper's single most important tuning.
    reduce_cache: FxHashMap<(u32, FdEnvId), u32>,
}

/// The prepared Simmen-style framework for one query.
pub struct SimmenFramework {
    caches: RefCell<Caches>,
    /// Interesting orders (prefix-closed), indexable by key.
    orders: Vec<Ordering>,
    order_keys: FxHashMap<Ordering, SimmenOrderKey>,
    producible: Vec<bool>,
}

impl SimmenFramework {
    /// "Preparation" for Simmen's algorithm is trivial (that is its
    /// advantage; the paper's point is that it loses during plan
    /// generation): intern the interesting orders and set up stores.
    pub fn prepare(spec: &InputSpec) -> Self {
        let mut caches = Caches {
            orderings: Interner::new(),
            envs: EnvStore::new(spec.fd_sets().to_vec()),
            reduce_cache: FxHashMap::default(),
        };
        caches.orderings.intern(Ordering::empty());

        let mut orders: Vec<Ordering> = Vec::new();
        let mut order_keys = FxHashMap::default();
        let mut producible = Vec::new();
        let add = |o: &Ordering,
                   prod: bool,
                   orders: &mut Vec<Ordering>,
                   producible: &mut Vec<bool>,
                   order_keys: &mut FxHashMap<Ordering, SimmenOrderKey>| {
            if let Some(k) = order_keys.get(o) {
                let SimmenOrderKey(i) = *k;
                producible[i as usize] = producible[i as usize] || prod;
                return;
            }
            order_keys.insert(o.clone(), SimmenOrderKey(orders.len() as u32));
            orders.push(o.clone());
            producible.push(prod);
        };
        for o in spec.produced() {
            add(o, true, &mut orders, &mut producible, &mut order_keys);
            for p in o.proper_prefixes() {
                add(&p, false, &mut orders, &mut producible, &mut order_keys);
            }
        }
        for o in spec.tested() {
            add(o, false, &mut orders, &mut producible, &mut order_keys);
            for p in o.proper_prefixes() {
                add(&p, false, &mut orders, &mut producible, &mut order_keys);
            }
        }
        for o in &orders {
            caches.orderings.intern(o.clone());
        }
        SimmenFramework {
            caches: RefCell::new(caches),
            orders,
            order_keys,
            producible,
        }
    }

    /// Key of an interesting order (or a prefix of one).
    pub fn key(&self, o: &Ordering) -> Option<SimmenOrderKey> {
        self.order_keys.get(o).copied()
    }

    /// Whether the order behind `k` is in `O_P`.
    pub fn is_producible(&self, k: SimmenOrderKey) -> bool {
        self.producible[k.0 as usize]
    }

    /// State of an unordered stream with no dependencies.
    pub fn produce_empty(&self) -> SimmenState {
        SimmenState {
            phys: 0,
            env: FdEnvId(0),
        }
    }

    /// State of a stream physically ordered by the order behind `k`
    /// (sort or ordered scan output) with no dependencies yet.
    pub fn produce(&self, k: SimmenOrderKey) -> SimmenState {
        let mut caches = self.caches.borrow_mut();
        let phys = caches.orderings.intern(self.orders[k.0 as usize].clone());
        SimmenState {
            phys,
            env: FdEnvId(0),
        }
    }

    /// `inferNewLogicalOrderings`: extends the node's FD environment.
    pub fn infer(&self, s: SimmenState, f: FdSetId) -> SimmenState {
        let mut caches = self.caches.borrow_mut();
        let env = caches.envs.extend(s.env, f);
        SimmenState { phys: s.phys, env }
    }

    /// `contains`: reduce both orderings under the environment, then
    /// prefix-test (cached).
    pub fn satisfies(&self, s: SimmenState, k: SimmenOrderKey) -> bool {
        let mut caches = self.caches.borrow_mut();
        let required = caches.orderings.get(&self.orders[k.0 as usize]).unwrap();
        let rp = reduced(&mut caches, s.phys, s.env);
        let rr = reduced(&mut caches, required, s.env);
        let rp = caches.orderings.resolve(rp).clone();
        let rr = caches.orderings.resolve(rr);
        rr.is_prefix_of(&rp)
    }

    /// Plan comparability (§7): same physical ordering, environment a
    /// superset — Simmen's scheme cannot see that extra dependencies are
    /// irrelevant, which is why it prunes fewer plans.
    pub fn dominates(&self, a: SimmenState, b: SimmenState) -> bool {
        if a.phys != b.phys {
            return false;
        }
        self.caches.borrow().envs.is_superset(a.env, b.env)
    }

    /// Bytes of order-annotation storage for a plan with
    /// `num_plan_nodes` nodes: the per-node states plus the shared
    /// interned environments, orderings and the reduction cache.
    pub fn memory_bytes(&self, num_plan_nodes: usize) -> usize {
        let caches = self.caches.borrow();
        let ordering_bytes: usize = caches
            .orderings
            .iter()
            .map(|(_, o)| o.heap_bytes() + std::mem::size_of::<Ordering>())
            .sum();
        num_plan_nodes * std::mem::size_of::<SimmenState>()
            + caches.envs.memory_bytes()
            + ordering_bytes
            + caches.reduce_cache.len()
                * (std::mem::size_of::<(u32, FdEnvId)>() + std::mem::size_of::<u32>())
    }

    /// All interesting orders with their keys.
    pub fn orders(&self) -> impl Iterator<Item = (&Ordering, SimmenOrderKey)> {
        self.orders
            .iter()
            .enumerate()
            .map(|(i, o)| (o, SimmenOrderKey(i as u32)))
    }

    /// Reduction-cache size (for diagnostics).
    pub fn cache_entries(&self) -> usize {
        self.caches.borrow().reduce_cache.len()
    }
}

/// Cached reduction of the interned ordering `phys` under `env`.
fn reduced(caches: &mut Caches, phys: u32, env: FdEnvId) -> u32 {
    if let Some(&hit) = caches.reduce_cache.get(&(phys, env)) {
        return hit;
    }
    let o = caches.orderings.resolve(phys).clone();
    let fds: Vec<ofw_core::fd::Fd> = caches.envs.env(env).fds.to_vec();
    let r = reduce(&o, &fds);
    let id = caches.orderings.intern(r);
    caches.reduce_cache.insert((phys, env), id);
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofw_catalog::AttrId;
    use ofw_core::fd::Fd;

    const A: AttrId = AttrId(0);
    const B: AttrId = AttrId(1);
    const C: AttrId = AttrId(2);
    const D: AttrId = AttrId(3);

    fn o(ids: &[AttrId]) -> Ordering {
        Ordering::new(ids.to_vec())
    }

    fn running_example() -> (InputSpec, FdSetId, FdSetId) {
        let mut spec = InputSpec::new();
        spec.add_produced(o(&[B]));
        spec.add_produced(o(&[A, B]));
        spec.add_tested(o(&[A, B, C]));
        let f_bc = spec.add_fd_set(vec![Fd::functional(&[B], C)]);
        let f_bd = spec.add_fd_set(vec![Fd::functional(&[B], D)]);
        (spec, f_bc, f_bd)
    }

    #[test]
    fn mirrors_core_walkthrough() {
        let (spec, f_bc, _) = running_example();
        let fw = SimmenFramework::prepare(&spec);
        let k_a = fw.key(&o(&[A])).unwrap();
        let k_ab = fw.key(&o(&[A, B])).unwrap();
        let k_abc = fw.key(&o(&[A, B, C])).unwrap();

        let s = fw.produce(k_ab);
        assert!(fw.satisfies(s, k_a));
        assert!(fw.satisfies(s, k_ab));
        assert!(!fw.satisfies(s, k_abc));

        let s2 = fw.infer(s, f_bc);
        assert!(fw.satisfies(s2, k_abc));
        assert!(fw.satisfies(s2, k_ab));
        assert_eq!(fw.infer(s2, f_bc), s2);
    }

    #[test]
    fn domination_needs_same_ordering_and_env_superset() {
        let (spec, f_bc, f_bd) = running_example();
        let fw = SimmenFramework::prepare(&spec);
        let k_ab = fw.key(&o(&[A, B])).unwrap();
        let base = fw.produce(k_ab);
        let with_bc = fw.infer(base, f_bc);
        let with_both = fw.infer(with_bc, f_bd);
        assert!(fw.dominates(with_bc, base));
        assert!(fw.dominates(with_both, with_bc));
        assert!(!fw.dominates(base, with_bc));
        // Unlike the DFSM framework, Simmen's scheme cannot see that
        // b→d is irrelevant: with_both does NOT equal with_bc, so two
        // otherwise identical plans stay alive.
        assert_ne!(with_both, with_bc);
        // Different physical orderings never compare.
        let k_b = fw.key(&o(&[B])).unwrap();
        assert!(!fw.dominates(fw.produce(k_b), base));
    }

    #[test]
    fn reduce_cache_fills_and_memory_is_accounted() {
        let (spec, f_bc, _) = running_example();
        let fw = SimmenFramework::prepare(&spec);
        let k_ab = fw.key(&o(&[A, B])).unwrap();
        let m0 = fw.memory_bytes(0);
        let s = fw.infer(fw.produce(k_ab), f_bc);
        let k_abc = fw.key(&o(&[A, B, C])).unwrap();
        assert!(fw.satisfies(s, k_abc));
        assert!(fw.satisfies(s, k_abc)); // second probe hits the cache
        assert!(fw.cache_entries() >= 2);
        assert!(fw.memory_bytes(0) > m0);
        // Per-plan-node cost is the 8-byte state.
        assert_eq!(
            fw.memory_bytes(100) - fw.memory_bytes(0),
            100 * std::mem::size_of::<SimmenState>()
        );
    }

    #[test]
    fn produce_empty_satisfies_nothing_until_constants() {
        let mut spec = InputSpec::new();
        spec.add_produced(o(&[A]));
        let f = spec.add_fd_set(vec![Fd::constant(A)]);
        let fw = SimmenFramework::prepare(&spec);
        let k_a = fw.key(&o(&[A])).unwrap();
        let s = fw.produce_empty();
        assert!(!fw.satisfies(s, k_a));
        let s2 = fw.infer(s, f);
        assert!(fw.satisfies(s2, k_a), "a=const ⇒ stream ordered by (a)");
    }

    #[test]
    fn prefixes_of_interesting_orders_have_keys() {
        let (spec, _, _) = running_example();
        let fw = SimmenFramework::prepare(&spec);
        assert!(fw.key(&o(&[A])).is_some());
        assert!(fw.key(&o(&[C])).is_none());
        assert!(fw.is_producible(fw.key(&o(&[B])).unwrap()));
        assert!(!fw.is_producible(fw.key(&o(&[A])).unwrap()));
    }
}
