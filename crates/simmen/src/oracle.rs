//! The Simmen-style order-optimization framework, exposing the same
//! plan-generation interface as `ofw_core::OrderingFramework` so the plan
//! generator can run with either implementation (§7's experiment setup).
//!
//! Interior mutability (a `Mutex`) hides the caches behind `&self`
//! methods — the plan generator calls `infer`/`satisfies` through shared
//! references millions of times, and the caches are pure memoization.
//! The mutex (rather than a `RefCell`) makes the framework `Sync`, so
//! the baseline runs under the parallel DP driver too — serializing on
//! its own shared caches, which is an honest rendition of what a
//! mutable-shared-state order representation costs on multicore.
//!
//! Grouping support mirrors the combined framework: a plan node's
//! physical property may be a grouping (hash-aggregation output), and a
//! grouping requirement is tested by closing the node's implied grouping
//! set under its FD environment. The closure is computed
//! *incrementally*: an environment extends its derivation parent by one
//! FD set, so the closure for `(property, env)` starts from the cached
//! closure of `(property, parent)` and only chases consequences of the
//! added dependencies (semi-naive evaluation), instead of re-running the
//! full fixpoint per (state, environment) — still Ω(n) per fresh probe,
//! which is exactly the asymmetry the DFSM framework removes, but no
//! longer gratuitously so.

use crate::env::{EnvStore, FdEnvId};
use crate::reduce::reduce;
use ofw_common::{FxHashMap, FxHashSet, Interner};
use ofw_core::derive::apply_fd_grouping;
use ofw_core::fd::{Fd, FdSetId};
use ofw_core::ordering::Ordering;
use ofw_core::property::{Grouping, LogicalProperty};
use ofw_core::spec::InputSpec;
use std::sync::Mutex;

/// Per-plan-node annotation under Simmen's scheme: the physical property
/// (interned ordering or grouping) plus the FD environment. Conceptually
/// this is Ω(n)-sized state; the handles point into shared stores whose
/// bytes are charged to [`SimmenFramework::memory_bytes`].
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimmenState {
    /// Interned physical property.
    pub phys: u32,
    /// Interned FD environment.
    pub env: FdEnvId,
}

impl std::fmt::Debug for SimmenState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}/{:?}", self.phys, self.env)
    }
}

/// Handle of an interesting property, pre-resolved once per query.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SimmenOrderKey(u32);

struct Caches {
    props: Interner<LogicalProperty>,
    envs: EnvStore,
    /// Reduction cache: (interned ordering, environment) → reduced
    /// interned ordering — the paper's single most important tuning.
    reduce_cache: FxHashMap<(u32, FdEnvId), u32>,
    /// Grouping cache: (interned property, environment) → set of
    /// groupings the stream satisfies under the environment.
    grouping_cache: FxHashMap<(u32, FdEnvId), FxHashSet<Grouping>>,
}

/// The prepared Simmen-style framework for one query.
pub struct SimmenFramework {
    caches: Mutex<Caches>,
    /// Interesting properties (orderings prefix-closed, groupings
    /// as-is), indexable by key.
    props: Vec<LogicalProperty>,
    prop_keys: FxHashMap<LogicalProperty, SimmenOrderKey>,
    producible: Vec<bool>,
}

impl SimmenFramework {
    /// "Preparation" for Simmen's algorithm is trivial (that is its
    /// advantage; the paper's point is that it loses during plan
    /// generation): intern the interesting properties and set up stores.
    pub fn prepare(spec: &InputSpec) -> Self {
        let mut caches = Caches {
            props: Interner::new(),
            envs: EnvStore::new(spec.fd_sets().to_vec()),
            reduce_cache: FxHashMap::default(),
            grouping_cache: FxHashMap::default(),
        };
        caches.props.intern(Ordering::empty().into());

        let mut props: Vec<LogicalProperty> = Vec::new();
        let mut prop_keys = FxHashMap::default();
        let mut producible = Vec::new();
        for (p, prod) in spec.interesting_closure() {
            prop_keys.insert(p.clone(), SimmenOrderKey(props.len() as u32));
            caches.props.intern(p.clone());
            props.push(p);
            producible.push(prod);
        }
        SimmenFramework {
            caches: Mutex::new(caches),
            props,
            prop_keys,
            producible,
        }
    }

    /// Key of an interesting order (or a prefix of one).
    pub fn key(&self, o: &Ordering) -> Option<SimmenOrderKey> {
        self.prop_keys
            .get(&LogicalProperty::Ordering(o.clone()))
            .copied()
    }

    /// Key of an interesting grouping.
    pub fn grouping_key(&self, g: &Grouping) -> Option<SimmenOrderKey> {
        self.prop_keys
            .get(&LogicalProperty::Grouping(g.clone()))
            .copied()
    }

    /// Whether the property behind `k` is in `O_P`.
    pub fn is_producible(&self, k: SimmenOrderKey) -> bool {
        self.producible[k.0 as usize]
    }

    /// State of an unordered stream with no dependencies.
    pub fn produce_empty(&self) -> SimmenState {
        SimmenState {
            phys: 0,
            env: FdEnvId(0),
        }
    }

    /// State of a stream physically shaped like the property behind `k`
    /// (sort / ordered-scan output for an ordering, hash-aggregation
    /// output for a grouping) with no dependencies yet.
    pub fn produce(&self, k: SimmenOrderKey) -> SimmenState {
        let mut caches = self.caches.lock().unwrap();
        let phys = caches.props.intern(self.props[k.0 as usize].clone());
        SimmenState {
            phys,
            env: FdEnvId(0),
        }
    }

    /// `inferNewLogicalOrderings`: extends the node's FD environment.
    pub fn infer(&self, s: SimmenState, f: FdSetId) -> SimmenState {
        let mut caches = self.caches.lock().unwrap();
        let env = caches.envs.extend(s.env, f);
        SimmenState { phys: s.phys, env }
    }

    /// `contains`: for an ordering requirement, reduce both orderings
    /// under the environment and prefix-test (cached); a grouped stream
    /// satisfies no ordering. For a grouping requirement, close the
    /// stream's implied groupings under the environment (cached) and
    /// test membership.
    pub fn satisfies(&self, s: SimmenState, k: SimmenOrderKey) -> bool {
        let mut caches = self.caches.lock().unwrap();
        match &self.props[k.0 as usize] {
            LogicalProperty::Ordering(required) => {
                if caches.props.resolve(s.phys).is_grouping() {
                    return false;
                }
                let required = caches
                    .props
                    .get(&required.clone().into())
                    .expect("interesting orders are interned");
                let rp = reduced(&mut caches, s.phys, s.env);
                let rr = reduced(&mut caches, required, s.env);
                let rp = match caches.props.resolve(rp).as_ordering() {
                    Some(o) => o.clone(),
                    None => return false,
                };
                let rr = caches.props.resolve(rr).as_ordering().cloned();
                rr.is_some_and(|rr| rr.is_prefix_of(&rp))
            }
            LogicalProperty::Grouping(required) => {
                groupings_contain(&mut caches, s.phys, s.env, required)
            }
        }
    }

    /// Plan comparability (§7): same physical property, environment a
    /// superset — Simmen's scheme cannot see that extra dependencies are
    /// irrelevant, which is why it prunes fewer plans.
    pub fn dominates(&self, a: SimmenState, b: SimmenState) -> bool {
        if a.phys != b.phys {
            return false;
        }
        self.caches.lock().unwrap().envs.is_superset(a.env, b.env)
    }

    /// Bytes of order-annotation storage for a plan with
    /// `num_plan_nodes` nodes: the per-node states plus the shared
    /// interned environments, properties and the memoization caches.
    pub fn memory_bytes(&self, num_plan_nodes: usize) -> usize {
        let caches = self.caches.lock().unwrap();
        let prop_bytes: usize = caches
            .props
            .iter()
            .map(|(_, p)| p.heap_bytes() + std::mem::size_of::<LogicalProperty>())
            .sum();
        let grouping_cache_bytes: usize = caches
            .grouping_cache
            .values()
            .map(|set| {
                std::mem::size_of::<(u32, FdEnvId)>()
                    + set
                        .iter()
                        .map(|g| g.heap_bytes() + std::mem::size_of::<Grouping>())
                        .sum::<usize>()
            })
            .sum();
        num_plan_nodes * std::mem::size_of::<SimmenState>()
            + caches.envs.memory_bytes()
            + prop_bytes
            + grouping_cache_bytes
            + caches.reduce_cache.len()
                * (std::mem::size_of::<(u32, FdEnvId)>() + std::mem::size_of::<u32>())
    }

    /// All interesting *orderings* with their keys.
    pub fn orders(&self) -> impl Iterator<Item = (&Ordering, SimmenOrderKey)> {
        self.props
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_ordering().map(|o| (o, SimmenOrderKey(i as u32))))
    }

    /// All interesting *groupings* with their keys.
    pub fn groupings(&self) -> impl Iterator<Item = (&Grouping, SimmenOrderKey)> {
        self.props
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_grouping().map(|g| (g, SimmenOrderKey(i as u32))))
    }

    /// Reduction-cache size (for diagnostics).
    pub fn cache_entries(&self) -> usize {
        self.caches.lock().unwrap().reduce_cache.len()
    }
}

/// Cached reduction of the interned ordering `phys` under `env`.
fn reduced(caches: &mut Caches, phys: u32, env: FdEnvId) -> u32 {
    if let Some(&hit) = caches.reduce_cache.get(&(phys, env)) {
        return hit;
    }
    let o = caches
        .props
        .resolve(phys)
        .as_ordering()
        .expect("reduction is only defined on orderings")
        .clone();
    let fds: Vec<ofw_core::fd::Fd> = caches.envs.env(env).fds.to_vec();
    let r = reduce(&o, &fds);
    let id = caches.props.intern(r.into());
    caches.reduce_cache.insert((phys, env), id);
    id
}

/// Membership probe against the cached grouping set of the stream in
/// physical property `phys` under `env`: prefix attribute sets of the
/// physical ordering (or the grouping key itself), closed under the
/// environment's dependencies — the persistent-FD ground truth, probed
/// in place once computed.
///
/// Closures are built *incrementally* along the environment's
/// derivation chain: `env` extends its parent by exactly one FD set, so
/// the closure under `env` is the parent's closure (cached or computed
/// on the way) plus the semi-naive delta of the added dependencies.
/// Every environment on the chain gets its closure cached, so a probe
/// on a deep environment both reuses and seeds the shallower ones.
fn groupings_contain(caches: &mut Caches, phys: u32, env: FdEnvId, required: &Grouping) -> bool {
    if let Some(hit) = caches.grouping_cache.get(&(phys, env)) {
        return hit.contains(required);
    }
    // Walk up the derivation chain to the nearest cached ancestor (or
    // the root environment).
    let mut chain: Vec<(FdEnvId, FdSetId)> = Vec::new();
    let mut anchor = env;
    while !caches.grouping_cache.contains_key(&(phys, anchor)) {
        match caches.envs.parent(anchor) {
            Some((parent, added)) => {
                chain.push((anchor, added));
                anchor = parent;
            }
            None => break,
        }
    }
    // Closure at the anchor: cached, or the base set of the physical
    // property closed under the (possibly empty) anchor environment.
    let mut set: FxHashSet<Grouping> = match caches.grouping_cache.get(&(phys, anchor)) {
        Some(hit) => hit.clone(),
        None => {
            let mut base: FxHashSet<Grouping> = FxHashSet::default();
            match caches.props.resolve(phys) {
                LogicalProperty::Ordering(o) => {
                    for len in 1..=o.len() {
                        base.insert(Grouping::new(o.attrs()[..len].to_vec()));
                    }
                }
                LogicalProperty::Grouping(g) => {
                    base.insert(g.clone());
                }
            }
            let fds = caches.envs.env(anchor).fds.to_vec();
            let seed: Vec<Grouping> = base.iter().cloned().collect();
            close_under(&mut base, seed, &fds, &fds);
            caches.grouping_cache.insert((phys, anchor), base.clone());
            base
        }
    };
    // Extend one derivation step at a time, reusing everything already
    // closed: existing members only need the *added* set's dependencies
    // applied; whatever that derives is then chased under the full
    // environment.
    for &(step_env, added) in chain.iter().rev() {
        let new_fds = caches.envs.set_fds(added).to_vec();
        let all_fds = caches.envs.env(step_env).fds.to_vec();
        let seed: Vec<Grouping> = set.iter().cloned().collect();
        close_under(&mut set, seed, &new_fds, &all_fds);
        caches.grouping_cache.insert((phys, step_env), set.clone());
    }
    set.contains(required)
}

/// Semi-naive closure step: applies `delta_fds` to every seed grouping,
/// then chases each *newly derived* grouping under `all_fds` to the
/// fixpoint. When `delta_fds == all_fds` and the seeds are the whole
/// set, this is the classic from-scratch fixpoint.
fn close_under(
    set: &mut FxHashSet<Grouping>,
    seeds: Vec<Grouping>,
    delta_fds: &[Fd],
    all_fds: &[Fd],
) {
    let mut buf: Vec<Grouping> = Vec::new();
    let mut fresh: Vec<Grouping> = Vec::new();
    for cur in &seeds {
        for fd in delta_fds {
            buf.clear();
            apply_fd_grouping(cur, fd, &mut buf);
            for d in buf.drain(..) {
                if !d.is_empty() && set.insert(d.clone()) {
                    fresh.push(d);
                }
            }
        }
    }
    while let Some(cur) = fresh.pop() {
        for fd in all_fds {
            buf.clear();
            apply_fd_grouping(&cur, fd, &mut buf);
            for d in buf.drain(..) {
                if !d.is_empty() && set.insert(d.clone()) {
                    fresh.push(d);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofw_catalog::AttrId;
    use ofw_core::fd::Fd;

    const A: AttrId = AttrId(0);
    const B: AttrId = AttrId(1);
    const C: AttrId = AttrId(2);
    const D: AttrId = AttrId(3);

    fn o(ids: &[AttrId]) -> Ordering {
        Ordering::new(ids.to_vec())
    }

    fn g(ids: &[AttrId]) -> Grouping {
        Grouping::new(ids.to_vec())
    }

    fn running_example() -> (InputSpec, FdSetId, FdSetId) {
        let mut spec = InputSpec::new();
        spec.add_produced(o(&[B]));
        spec.add_produced(o(&[A, B]));
        spec.add_tested(o(&[A, B, C]));
        let f_bc = spec.add_fd_set(vec![Fd::functional(&[B], C)]);
        let f_bd = spec.add_fd_set(vec![Fd::functional(&[B], D)]);
        (spec, f_bc, f_bd)
    }

    #[test]
    fn mirrors_core_walkthrough() {
        let (spec, f_bc, _) = running_example();
        let fw = SimmenFramework::prepare(&spec);
        let k_a = fw.key(&o(&[A])).unwrap();
        let k_ab = fw.key(&o(&[A, B])).unwrap();
        let k_abc = fw.key(&o(&[A, B, C])).unwrap();

        let s = fw.produce(k_ab);
        assert!(fw.satisfies(s, k_a));
        assert!(fw.satisfies(s, k_ab));
        assert!(!fw.satisfies(s, k_abc));

        let s2 = fw.infer(s, f_bc);
        assert!(fw.satisfies(s2, k_abc));
        assert!(fw.satisfies(s2, k_ab));
        assert_eq!(fw.infer(s2, f_bc), s2);
    }

    #[test]
    fn domination_needs_same_ordering_and_env_superset() {
        let (spec, f_bc, f_bd) = running_example();
        let fw = SimmenFramework::prepare(&spec);
        let k_ab = fw.key(&o(&[A, B])).unwrap();
        let base = fw.produce(k_ab);
        let with_bc = fw.infer(base, f_bc);
        let with_both = fw.infer(with_bc, f_bd);
        assert!(fw.dominates(with_bc, base));
        assert!(fw.dominates(with_both, with_bc));
        assert!(!fw.dominates(base, with_bc));
        // Unlike the DFSM framework, Simmen's scheme cannot see that
        // b→d is irrelevant: with_both does NOT equal with_bc, so two
        // otherwise identical plans stay alive.
        assert_ne!(with_both, with_bc);
        // Different physical orderings never compare.
        let k_b = fw.key(&o(&[B])).unwrap();
        assert!(!fw.dominates(fw.produce(k_b), base));
    }

    #[test]
    fn reduce_cache_fills_and_memory_is_accounted() {
        let (spec, f_bc, _) = running_example();
        let fw = SimmenFramework::prepare(&spec);
        let k_ab = fw.key(&o(&[A, B])).unwrap();
        let m0 = fw.memory_bytes(0);
        let s = fw.infer(fw.produce(k_ab), f_bc);
        let k_abc = fw.key(&o(&[A, B, C])).unwrap();
        assert!(fw.satisfies(s, k_abc));
        assert!(fw.satisfies(s, k_abc)); // second probe hits the cache
        assert!(fw.cache_entries() >= 2);
        assert!(fw.memory_bytes(0) > m0);
        // Per-plan-node cost is the 8-byte state.
        assert_eq!(
            fw.memory_bytes(100) - fw.memory_bytes(0),
            100 * std::mem::size_of::<SimmenState>()
        );
    }

    #[test]
    fn produce_empty_satisfies_nothing_until_constants() {
        let mut spec = InputSpec::new();
        spec.add_produced(o(&[A]));
        let f = spec.add_fd_set(vec![Fd::constant(A)]);
        let fw = SimmenFramework::prepare(&spec);
        let k_a = fw.key(&o(&[A])).unwrap();
        let s = fw.produce_empty();
        assert!(!fw.satisfies(s, k_a));
        let s2 = fw.infer(s, f);
        assert!(fw.satisfies(s2, k_a), "a=const ⇒ stream ordered by (a)");
    }

    #[test]
    fn prefixes_of_interesting_orders_have_keys() {
        let (spec, _, _) = running_example();
        let fw = SimmenFramework::prepare(&spec);
        assert!(fw.key(&o(&[A])).is_some());
        assert!(fw.key(&o(&[C])).is_none());
        assert!(fw.is_producible(fw.key(&o(&[B])).unwrap()));
        assert!(!fw.is_producible(fw.key(&o(&[A])).unwrap()));
    }

    #[test]
    fn grouping_support_mirrors_the_combined_framework() {
        let mut spec = InputSpec::new();
        spec.add_produced(o(&[A, B]));
        spec.add_produced(g(&[A, B]));
        spec.add_tested(g(&[A, B, C]));
        let f_bc = spec.add_fd_set(vec![Fd::functional(&[B], C)]);
        let fw = SimmenFramework::prepare(&spec);

        let k_ab = fw.key(&o(&[A, B])).unwrap();
        let kg_ab = fw.grouping_key(&g(&[A, B])).unwrap();
        let kg_abc = fw.grouping_key(&g(&[A, B, C])).unwrap();
        assert!(fw.is_producible(kg_ab));
        assert!(!fw.is_producible(kg_abc));

        // Sorted stream: grouped by every prefix set; FD extends it.
        let s = fw.produce(k_ab);
        assert!(fw.satisfies(s, kg_ab));
        assert!(!fw.satisfies(s, kg_abc));
        let s2 = fw.infer(s, f_bc);
        assert!(fw.satisfies(s2, kg_abc));

        // Hash-grouped stream: its grouping, but no ordering.
        let sg = fw.produce(kg_ab);
        assert!(fw.satisfies(sg, kg_ab));
        assert!(!fw.satisfies(sg, k_ab));
        assert!(fw.satisfies(fw.infer(sg, f_bc), kg_abc));
        // Different physical kinds never dominate each other.
        assert!(!fw.dominates(s, sg));
        assert_eq!(fw.groupings().count(), 2);
    }

    #[test]
    fn incremental_closure_matches_stepwise_and_fresh_probes() {
        // A chain of dependencies a→b→c→d. The grouping closure of a
        // stream ordered by (a) must grow one attribute per applied FD
        // set, and it must not matter whether intermediate environments
        // were probed (warm parent-chain cache) or only the deepest one
        // (closure built through the chain in one go).
        let mut spec = InputSpec::new();
        spec.add_produced(o(&[A]));
        spec.add_tested(g(&[A, B]));
        spec.add_tested(g(&[A, B, C]));
        spec.add_tested(g(&[A, B, C, D]));
        let f_ab = spec.add_fd_set(vec![Fd::functional(&[A], B)]);
        let f_bc = spec.add_fd_set(vec![Fd::functional(&[B], C)]);
        let f_cd = spec.add_fd_set(vec![Fd::functional(&[C], D)]);

        let probe_all = |fw: &SimmenFramework, s: SimmenState| -> Vec<bool> {
            [g(&[A, B]), g(&[A, B, C]), g(&[A, B, C, D])]
                .into_iter()
                .map(|gr| fw.satisfies(s, fw.grouping_key(&gr).unwrap()))
                .collect()
        };

        // Stepwise: probe after every single infer (caches every chain
        // link as it appears).
        let fw = SimmenFramework::prepare(&spec);
        let k_a = fw.key(&o(&[A])).unwrap();
        let s0 = fw.produce(k_a);
        let s1 = fw.infer(s0, f_ab);
        assert_eq!(probe_all(&fw, s1), vec![true, false, false]);
        let s2 = fw.infer(s1, f_bc);
        assert_eq!(probe_all(&fw, s2), vec![true, true, false]);
        let s3 = fw.infer(s2, f_cd);
        assert_eq!(probe_all(&fw, s3), vec![true, true, true]);

        // Fresh framework, deepest environment probed first: the chain
        // walk computes ancestors on the way — same answers.
        let fresh = SimmenFramework::prepare(&spec);
        let t3 = fresh.infer(
            fresh.infer(fresh.infer(fresh.produce(k_a), f_ab), f_bc),
            f_cd,
        );
        assert_eq!(probe_all(&fresh, t3), vec![true, true, true]);
        // ...and the intermediate environments were cached on the way,
        // so shallower probes agree without recomputation.
        let t1 = fresh.infer(fresh.produce(k_a), f_ab);
        assert_eq!(probe_all(&fresh, t1), vec![true, false, false]);
    }
}
