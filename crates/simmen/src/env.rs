//! FD environments: the per-plan-node dependency sets of Simmen's
//! representation, with the "specially tailored memory management" the
//! paper used for a fair comparison.
//!
//! A plan node's environment is the multiset of FD sets applied on the
//! path below it. Environments are immutable and *interned*: extending
//! an environment by an operator's `FdSetId` yields a handle, and equal
//! extension chains share one handle (and one materialized FD vector).
//! This keeps `inferNewLogicalOrderings` cheap and makes the memory
//! accounting reflect sharing, exactly like an arena of persistent
//! environment nodes would.

use ofw_common::{FxHashMap, MemoryMeter};
use ofw_core::fd::{Fd, FdSet, FdSetId};

/// Handle of an interned FD environment.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FdEnvId(pub u32);

impl std::fmt::Debug for FdEnvId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "env{}", self.0)
    }
}

/// One interned environment: a sorted set of applied `FdSetId`s plus the
/// flattened dependency list used by reduction.
#[derive(Debug)]
pub struct FdEnv {
    /// Sorted, deduplicated applied FD-set handles.
    pub sets: Box<[FdSetId]>,
    /// All member dependencies, flattened (what `reduce` iterates).
    pub fds: Box<[Fd]>,
}

/// Interning store for environments.
pub struct EnvStore {
    all_sets: Vec<FdSet>,
    envs: Vec<FdEnv>,
    by_sets: FxHashMap<Box<[FdSetId]>, FdEnvId>,
    /// Extension cache: (env, applied set) → extended env.
    extend_cache: FxHashMap<(FdEnvId, FdSetId), FdEnvId>,
    /// Derivation parent per env: the (smaller env, added FD set) pair
    /// that first built it via [`EnvStore::extend`] — the backbone the
    /// incremental grouping closure walks. `None` for the empty env.
    parents: Vec<Option<(FdEnvId, FdSetId)>>,
    meter: MemoryMeter,
}

impl EnvStore {
    /// Creates a store over the query's FD sets, with the empty
    /// environment pre-interned as id 0.
    pub fn new(all_sets: Vec<FdSet>) -> Self {
        let mut store = EnvStore {
            all_sets,
            envs: Vec::new(),
            by_sets: FxHashMap::default(),
            extend_cache: FxHashMap::default(),
            parents: Vec::new(),
            meter: MemoryMeter::new(),
        };
        let empty = store.intern(Box::new([]), None);
        debug_assert_eq!(empty, FdEnvId(0));
        store
    }

    /// The empty environment.
    pub fn empty(&self) -> FdEnvId {
        FdEnvId(0)
    }

    /// Environment extended by one operator's FD set.
    pub fn extend(&mut self, env: FdEnvId, set: FdSetId) -> FdEnvId {
        if let Some(&hit) = self.extend_cache.get(&(env, set)) {
            return hit;
        }
        let mut sets: Vec<FdSetId> = self.envs[env.0 as usize].sets.to_vec();
        match sets.binary_search(&set) {
            Ok(_) => {
                self.extend_cache.insert((env, set), env);
                env
            }
            Err(pos) => {
                sets.insert(pos, set);
                let id = self.intern(sets.into_boxed_slice(), Some((env, set)));
                self.extend_cache.insert((env, set), id);
                id
            }
        }
    }

    fn intern(&mut self, sets: Box<[FdSetId]>, parent: Option<(FdEnvId, FdSetId)>) -> FdEnvId {
        if let Some(&id) = self.by_sets.get(&sets) {
            return id;
        }
        let fds: Vec<Fd> = sets
            .iter()
            .flat_map(|s| self.all_sets[s.index()].fds().iter().cloned())
            .collect();
        let id = FdEnvId(self.envs.len() as u32);
        self.meter.alloc(
            sets.len() * std::mem::size_of::<FdSetId>()
                + fds.iter().map(fd_bytes).sum::<usize>()
                + std::mem::size_of::<FdEnv>(),
        );
        self.envs.push(FdEnv {
            sets: sets.clone(),
            fds: fds.into_boxed_slice(),
        });
        self.parents.push(parent);
        self.by_sets.insert(sets, id);
        id
    }

    /// Resolves a handle.
    pub fn env(&self, id: FdEnvId) -> &FdEnv {
        &self.envs[id.0 as usize]
    }

    /// The (smaller env, added FD set) that first derived `id`, or
    /// `None` for the empty environment — every interned environment is
    /// reachable from the empty one through this chain, because the plan
    /// generator only ever grows environments one operator at a time.
    pub fn parent(&self, id: FdEnvId) -> Option<(FdEnvId, FdSetId)> {
        self.parents[id.0 as usize]
    }

    /// The member dependencies of one FD set.
    pub fn set_fds(&self, set: FdSetId) -> &[Fd] {
        self.all_sets[set.index()].fds()
    }

    /// True if every FD set of `b` is also in `a` — the comparability
    /// test the plan generator uses for pruning ("the set of functional
    /// dependencies is equal (respectively a subset)", §7).
    pub fn is_superset(&self, a: FdEnvId, b: FdEnvId) -> bool {
        if a == b {
            return true;
        }
        let (sa, sb) = (&self.envs[a.0 as usize].sets, &self.envs[b.0 as usize].sets);
        if sb.len() > sa.len() {
            return false;
        }
        // Both sorted: subset check by merge.
        let mut i = 0;
        for &x in sb.iter() {
            while i < sa.len() && sa[i] < x {
                i += 1;
            }
            if i == sa.len() || sa[i] != x {
                return false;
            }
        }
        true
    }

    /// Bytes held by all interned environments.
    pub fn memory_bytes(&self) -> usize {
        self.meter.current()
    }

    /// Number of distinct environments.
    pub fn len(&self) -> usize {
        self.envs.len()
    }

    /// Never empty (the empty environment always exists).
    pub fn is_empty(&self) -> bool {
        false
    }
}

fn fd_bytes(fd: &Fd) -> usize {
    std::mem::size_of::<Fd>()
        + match fd {
            Fd::Functional { lhs, .. } => lhs.len() * std::mem::size_of::<ofw_catalog::AttrId>(),
            _ => 0,
        }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofw_catalog::AttrId;

    const A: AttrId = AttrId(0);
    const B: AttrId = AttrId(1);
    const C: AttrId = AttrId(2);

    fn sets() -> Vec<FdSet> {
        vec![
            FdSet::new(vec![Fd::equation(A, B)]),
            FdSet::new(vec![Fd::functional(&[B], C)]),
            FdSet::new(vec![Fd::constant(C)]),
        ]
    }

    #[test]
    fn extension_is_interned_and_order_insensitive() {
        let mut store = EnvStore::new(sets());
        let e0 = store.empty();
        let tmp = store.extend(e0, FdSetId(0));
        let e01 = store.extend(tmp, FdSetId(1));
        let tmp = store.extend(e0, FdSetId(1));
        let e10 = store.extend(tmp, FdSetId(0));
        assert_eq!(e01, e10, "same set of applied FD sets, same env");
        assert_eq!(store.env(e01).fds.len(), 2);
    }

    #[test]
    fn reapplying_a_set_is_identity() {
        let mut store = EnvStore::new(sets());
        let e = store.extend(store.empty(), FdSetId(2));
        assert_eq!(store.extend(e, FdSetId(2)), e);
    }

    #[test]
    fn superset_check() {
        let mut store = EnvStore::new(sets());
        let e0 = store.empty();
        let e1 = store.extend(e0, FdSetId(0));
        let e12 = store.extend(e1, FdSetId(2));
        assert!(store.is_superset(e12, e1));
        assert!(store.is_superset(e1, e0));
        assert!(!store.is_superset(e1, e12));
        let e2 = store.extend(e0, FdSetId(2));
        assert!(!store.is_superset(e1, e2));
        assert!(store.is_superset(e12, e2));
    }

    #[test]
    fn parent_chain_reaches_the_empty_env() {
        let mut store = EnvStore::new(sets());
        let e0 = store.empty();
        let e1 = store.extend(e0, FdSetId(1));
        let e12 = store.extend(e1, FdSetId(2));
        assert_eq!(store.parent(e0), None);
        assert_eq!(store.parent(e1), Some((e0, FdSetId(1))));
        assert_eq!(store.parent(e12), Some((e1, FdSetId(2))));
        assert_eq!(store.set_fds(FdSetId(2)).len(), 1);
    }

    #[test]
    fn memory_grows_with_distinct_envs_only() {
        let mut store = EnvStore::new(sets());
        let before = store.memory_bytes();
        let e1 = store.extend(store.empty(), FdSetId(0));
        let grown = store.memory_bytes();
        assert!(grown > before);
        let _again = store.extend(store.empty(), FdSetId(0));
        assert_eq!(store.memory_bytes(), grown, "interning shares");
        let _ = e1;
    }
}
