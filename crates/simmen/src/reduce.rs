//! Simmen's reduction algorithm (described in §3 of the Neumann &
//! Moerkotte paper).
//!
//! Reduction "roughly does the opposite of deducing more orderings": an
//! occurrence of an attribute is removed if it is implied by what
//! precedes it. Concretely:
//!
//! 1. attributes bound by a constant (`∅ → a`) are removed anywhere;
//! 2. equations partition attributes into equivalence classes; both
//!    orderings are normalized to class representatives (and a second
//!    occurrence of the same class is implied by the first, so it is
//!    dropped);
//! 3. for an FD `lhs → rhs`, an occurrence of `rhs` is removed if all of
//!    `lhs` precede it.
//!
//! `contains` then reduces both the node's physical ordering and the
//! required ordering and tests whether the reduced requirement is a
//! prefix of the reduced physical ordering.
//!
//! The induced rewrite system is **not confluent** (paper §3): under
//! `{a→b, ab→c}` the ordering `(a,b,c)` reduces to `(a)` or to `(a,c)`
//! depending on application order. Like the original, we apply the
//! dependencies in their environment order and live with occasionally
//! missing an exploitable ordering — the paper shows this costs plan
//! quality for Simmen's side, not correctness.

use ofw_catalog::AttrId;
use ofw_common::FxHashSet;
use ofw_core::eqclass::EqClasses;
use ofw_core::fd::Fd;
use ofw_core::ordering::Ordering;

/// Reduces `o` under the dependencies `fds` (deterministic order: the
/// slice order, each applied to a fixpoint).
pub fn reduce(o: &Ordering, fds: &[Fd]) -> Ordering {
    // Pass 1: equivalence classes and the constant closure over them.
    let eq = EqClasses::from_fds(fds.iter());
    let mut const_reps: FxHashSet<AttrId> = FxHashSet::default();
    for fd in fds {
        if let Fd::Constant(a) = fd {
            const_reps.insert(eq.find(*a));
        }
    }

    // Pass 2: normalize to representatives, dropping constants and
    // repeated class members.
    let mut attrs: Vec<AttrId> = Vec::with_capacity(o.len());
    let mut seen: FxHashSet<AttrId> = FxHashSet::default();
    for &a in o.attrs() {
        let r = eq.find(a);
        if const_reps.contains(&r) || !seen.insert(r) {
            continue;
        }
        attrs.push(r);
    }

    // Pass 3: FD removals to a fixpoint, in slice order.
    loop {
        let mut changed = false;
        for fd in fds {
            let Fd::Functional { lhs, rhs } = fd else {
                continue;
            };
            let rhs_rep = eq.find(*rhs);
            // Remove an occurrence of rhs if all lhs attrs precede it;
            // re-scan after each removal until this FD is exhausted.
            while let Some(pos) = attrs.iter().position(|&a| a == rhs_rep) {
                let before = &attrs[..pos];
                let implied = lhs.iter().all(|&l| before.contains(&eq.find(l)));
                if implied {
                    attrs.remove(pos);
                    changed = true;
                } else {
                    break;
                }
            }
        }
        if !changed {
            break;
        }
    }
    Ordering::new(attrs)
}

/// The `contains` test: does a stream physically ordered by `physical`
/// (with `fds` holding) satisfy `required`?
pub fn contains(physical: &Ordering, required: &Ordering, fds: &[Fd]) -> bool {
    let rp = reduce(physical, fds);
    let rr = reduce(required, fds);
    rr.is_prefix_of(&rp)
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: AttrId = AttrId(0);
    const B: AttrId = AttrId(1);
    const C: AttrId = AttrId(2);
    const X: AttrId = AttrId(3);

    fn o(ids: &[AttrId]) -> Ordering {
        Ordering::new(ids.to_vec())
    }

    #[test]
    fn paper_reduction_example() {
        // §3: physical (a), required (a,b,c), FDs {a→b, a,b→c}.
        // Reducing (a,b,c) with a,b→c first yields (a,b), then a→b
        // yields (a); prefix of (a) ⇒ contained.
        let fds = [Fd::functional(&[A, B], C), Fd::functional(&[A], B)];
        assert_eq!(reduce(&o(&[A, B, C]), &fds), o(&[A]));
        assert_eq!(reduce(&o(&[A]), &fds), o(&[A]));
        assert!(contains(&o(&[A]), &o(&[A, B, C]), &fds));
    }

    #[test]
    fn non_confluence_paper_example() {
        // With the FDs in the other order, a→b fires first: (a,b,c)
        // loses b, leaving (a,c) — "no further reduction is possible".
        let fds = [Fd::functional(&[A], B), Fd::functional(&[A, B], C)];
        assert_eq!(reduce(&o(&[A, B, C]), &fds), o(&[A, C]));
        // The consequence the paper describes: contains answers false
        // although true is correct — the ordering goes unexploited.
        assert!(!contains(&o(&[A]), &o(&[A, B, C]), &fds));
    }

    #[test]
    fn constants_are_removed_anywhere() {
        let fds = [Fd::constant(X)];
        assert_eq!(reduce(&o(&[X, A, B]), &fds), o(&[A, B]));
        assert_eq!(reduce(&o(&[A, X, B]), &fds), o(&[A, B]));
        // §2 intro: sorted on (a), selection x = const ⇒ satisfies
        // (x,a), (a,x), (x)…
        assert!(contains(&o(&[A]), &o(&[X, A]), &fds));
        assert!(contains(&o(&[A]), &o(&[A, X]), &fds));
        assert!(contains(&o(&[A]), &o(&[X]), &fds));
        assert!(!contains(&o(&[A]), &o(&[B]), &fds));
    }

    #[test]
    fn equations_normalize_both_sides() {
        // Intro example: sorted on a, predicate a = b ⇒ stream satisfies
        // (a,b), (b,a), (b).
        let fds = [Fd::equation(A, B)];
        assert!(contains(&o(&[A]), &o(&[A, B]), &fds));
        assert!(contains(&o(&[A]), &o(&[B, A]), &fds));
        assert!(contains(&o(&[A]), &o(&[B]), &fds));
        assert!(!contains(&o(&[A]), &o(&[C]), &fds));
    }

    #[test]
    fn plain_fd_removal_requires_full_lhs() {
        let fds = [Fd::functional(&[A, B], C)];
        // c preceded by a only: not implied.
        assert_eq!(reduce(&o(&[A, C, B]), &fds), o(&[A, C, B]));
        assert_eq!(reduce(&o(&[A, B, C]), &fds), o(&[A, B]));
    }

    #[test]
    fn reduction_is_idempotent() {
        let fds = [Fd::functional(&[A], B), Fd::equation(B, C), Fd::constant(X)];
        for ord in [o(&[A, B, C, X]), o(&[C, A]), o(&[X]), o(&[B, A])] {
            let once = reduce(&ord, &fds);
            assert_eq!(reduce(&once, &fds), once, "input {ord:?}");
        }
    }

    #[test]
    fn reduction_never_lengthens() {
        let fds = [Fd::functional(&[A], B), Fd::equation(A, C)];
        for ord in [o(&[A, B, C]), o(&[C, B]), o(&[B]), o(&[A, B])] {
            assert!(reduce(&ord, &fds).len() <= ord.len());
        }
    }
}
