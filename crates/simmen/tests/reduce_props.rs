//! Property-based tests on Simmen's reduction algorithm.

use ofw_catalog::AttrId;
use ofw_core::fd::Fd;
use ofw_core::ordering::Ordering;
use ofw_simmen::reduce::{contains, reduce};
use proptest::prelude::*;

const NUM_ATTRS: u32 = 5;

fn arb_attr() -> impl Strategy<Value = AttrId> {
    (0..NUM_ATTRS).prop_map(AttrId)
}

fn arb_ordering() -> impl Strategy<Value = Ordering> {
    proptest::collection::vec(arb_attr(), 0..=4).prop_filter_map("dups", |attrs| {
        let mut seen = std::collections::HashSet::new();
        attrs
            .iter()
            .all(|a| seen.insert(*a))
            .then(|| Ordering::new(attrs))
    })
}

fn arb_fds() -> impl Strategy<Value = Vec<Fd>> {
    proptest::collection::vec(
        prop_oneof![
            (arb_attr(), arb_attr())
                .prop_filter_map("trivial", |(a, b)| (a != b).then(|| Fd::equation(a, b))),
            (proptest::collection::vec(arb_attr(), 1..=2), arb_attr())
                .prop_filter_map("trivial", |(lhs, rhs)| (!lhs.contains(&rhs))
                    .then(|| Fd::functional(&lhs, rhs))),
            arb_attr().prop_map(Fd::constant),
        ],
        0..=4,
    )
}

proptest! {
    /// Reduction is idempotent: reduce(reduce(o)) == reduce(o).
    #[test]
    fn reduction_is_idempotent(o in arb_ordering(), fds in arb_fds()) {
        let once = reduce(&o, &fds);
        prop_assert_eq!(reduce(&once, &fds), once);
    }

    /// Reduction never lengthens an ordering.
    #[test]
    fn reduction_never_lengthens(o in arb_ordering(), fds in arb_fds()) {
        prop_assert!(reduce(&o, &fds).len() <= o.len());
    }

    /// The reduced ordering is a subsequence of the representative-mapped
    /// input (reduction only removes, substitutes within classes).
    #[test]
    fn reduction_is_a_subsequence(o in arb_ordering(), fds in arb_fds()) {
        let eq = ofw_core::eqclass::EqClasses::from_fds(fds.iter());
        let mapped: Vec<AttrId> = eq.map_slice(o.attrs());
        let reduced = reduce(&o, &fds);
        let mut i = 0usize;
        for &r in reduced.attrs() {
            loop {
                prop_assert!(i < mapped.len(), "{:?} not a subsequence of {:?}", reduced, mapped);
                if mapped[i] == r {
                    i += 1;
                    break;
                }
                i += 1;
            }
        }
    }

    /// `contains` is reflexive and prefix-compatible: a physical ordering
    /// satisfies itself and all its prefixes under any dependencies.
    #[test]
    fn contains_is_reflexive_and_prefix_closed(o in arb_ordering(), fds in arb_fds()) {
        prop_assert!(contains(&o, &o, &fds));
        for l in 0..o.len() {
            prop_assert!(contains(&o, &o.prefix(l), &fds));
        }
    }

    /// Without dependencies, `contains` is exactly the prefix test.
    #[test]
    fn contains_without_fds_is_prefix(a in arb_ordering(), b in arb_ordering()) {
        prop_assert_eq!(contains(&a, &b, &[]), b.is_prefix_of(&a));
    }

    /// Reduction is deterministic: same inputs, same output — the
    /// non-confluence the paper describes is across *dependency
    /// orderings*, never across runs.
    #[test]
    fn reduction_is_deterministic(o in arb_ordering(), fds in arb_fds()) {
        prop_assert_eq!(reduce(&o, &fds), reduce(&o, &fds));
    }
}

/// Simmen's `contains` is not monotone in the dependency set: adding a
/// constant can *lose* a positive answer, because the constant removal
/// erases an attribute another dependency's left-hand side needed. This
/// is the same flavour of incompleteness as the §3 non-confluence and a
/// reason the FSM framework (which reasons over all derivation orders at
/// preparation time) exploits strictly more orderings.
#[test]
fn adding_a_constant_can_lose_containment() {
    const A0: AttrId = AttrId(0);
    const A1: AttrId = AttrId(1);
    const A2: AttrId = AttrId(2);
    let a = Ordering::new(vec![A1]);
    let b = Ordering::new(vec![A1, A0]);
    let fds = vec![Fd::functional(&[A1], A0), Fd::equation(A0, A2)];
    assert!(contains(&a, &b, &fds));
    let mut more = fds.clone();
    more.push(Fd::constant(A1));
    // a1 is removed from both sides first, so a1→a0 can no longer fire
    // and the (semantically still true) containment is missed.
    assert!(!contains(&a, &b, &more));
}
