//! The catalog: relations, attributes, indexes, cardinalities.

use crate::attr::{AttrId, RelId};
use ofw_common::FxHashMap;

/// Physical index metadata: scanning it yields tuples ordered by `key`.
#[derive(Clone, Debug, PartialEq)]
pub struct Index {
    /// Attributes of the index key, major first.
    pub key: Vec<AttrId>,
    /// Clustered indexes scan at sequential-I/O cost; unclustered ones pay
    /// a random-access penalty in the cost model.
    pub clustered: bool,
}

/// A base relation with its physical metadata.
#[derive(Clone, Debug)]
pub struct Relation {
    /// Relation name (unique in the catalog).
    pub name: String,
    /// Estimated tuple count, the basis of all cardinality estimation.
    pub cardinality: f64,
    /// Attributes owned by this relation, in declaration order.
    pub attrs: Vec<AttrId>,
    /// Available indexes.
    pub indexes: Vec<Index>,
}

/// A schema catalog mapping names to dense ids and back.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    relations: Vec<Relation>,
    attr_names: Vec<String>,
    attr_rel: Vec<RelId>,
    rel_by_name: FxHashMap<String, RelId>,
    attr_by_name: FxHashMap<String, AttrId>,
    /// Estimated distinct-value counts per attribute (sparse — unset
    /// columns have no estimate and callers fall back to heuristics).
    attr_distinct: FxHashMap<AttrId, f64>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a relation with the given attributes; returns its id.
    ///
    /// Attribute names are qualified as `"<rel>.<attr>"` in the global
    /// name map, so the same column name may appear in several relations.
    /// Unqualified names also resolve when unambiguous.
    pub fn add_relation(&mut self, name: &str, cardinality: f64, attr_names: &[&str]) -> RelId {
        assert!(
            !self.rel_by_name.contains_key(name),
            "duplicate relation {name}"
        );
        let rel_id = RelId(u32::try_from(self.relations.len()).expect("too many relations"));
        let mut attrs = Vec::with_capacity(attr_names.len());
        for attr in attr_names {
            let attr_id = AttrId(u32::try_from(self.attr_names.len()).expect("too many attrs"));
            self.attr_names.push(format!("{name}.{attr}"));
            self.attr_rel.push(rel_id);
            self.attr_by_name.insert(format!("{name}.{attr}"), attr_id);
            // Unqualified alias: first writer wins; ambiguous names must be
            // qualified by callers.
            self.attr_by_name
                .entry((*attr).to_string())
                .or_insert(attr_id);
            attrs.push(attr_id);
        }
        self.relations.push(Relation {
            name: name.to_string(),
            cardinality,
            attrs,
            indexes: Vec::new(),
        });
        self.rel_by_name.insert(name.to_string(), rel_id);
        rel_id
    }

    /// Registers an index on `rel`.
    pub fn add_index(&mut self, rel: RelId, key: Vec<AttrId>, clustered: bool) {
        assert!(!key.is_empty(), "index key must be non-empty");
        self.relations[rel.index()]
            .indexes
            .push(Index { key, clustered });
    }

    /// Records an estimated distinct-value count for `attr` — the basis
    /// of aggregate-output cardinality estimation. Clamped to at least
    /// one; estimates above the owning relation's cardinality are
    /// meaningless and clamped down to it.
    pub fn set_distinct_values(&mut self, attr: AttrId, distinct: f64) {
        let card = self.relations[self.attr_rel[attr.index()].index()].cardinality;
        self.attr_distinct.insert(attr, distinct.clamp(1.0, card));
    }

    /// The estimated distinct-value count of `attr`, if one was recorded.
    pub fn distinct_values(&self, attr: AttrId) -> Option<f64> {
        self.attr_distinct.get(&attr).copied()
    }

    /// Whether `attr` is (estimated to be) unique within its relation —
    /// its distinct count reaches the relation's cardinality. Unique
    /// columns are keys: they functionally determine every other
    /// attribute of the relation, which is what lets a join key
    /// determine the aggregation group.
    pub fn is_unique(&self, attr: AttrId) -> bool {
        let card = self.relations[self.attr_rel[attr.index()].index()].cardinality;
        self.distinct_values(attr)
            .is_some_and(|d| d >= card && card > 0.0)
    }

    /// Resolves a relation by name.
    pub fn relation_id(&self, name: &str) -> Option<RelId> {
        self.rel_by_name.get(name).copied()
    }

    /// Resolves an attribute by (possibly qualified) name.
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.attr_by_name.get(name).copied()
    }

    /// Resolves an attribute, panicking with a useful message if unknown.
    pub fn attr(&self, name: &str) -> AttrId {
        self.attr_id(name)
            .unwrap_or_else(|| panic!("unknown attribute {name}"))
    }

    /// The relation owning `attr`.
    pub fn attr_relation(&self, attr: AttrId) -> RelId {
        self.attr_rel[attr.index()]
    }

    /// The qualified name of `attr`.
    pub fn attr_name(&self, attr: AttrId) -> &str {
        &self.attr_names[attr.index()]
    }

    /// Relation metadata.
    pub fn relation(&self, rel: RelId) -> &Relation {
        &self.relations[rel.index()]
    }

    /// All relations in id order.
    pub fn relations(&self) -> &[Relation] {
        &self.relations
    }

    /// Total number of attributes across all relations.
    pub fn num_attrs(&self) -> usize {
        self.attr_names.len()
    }

    /// Renders an ordering (attribute sequence) with qualified names —
    /// used by examples and debugging output.
    pub fn render_ordering(&self, attrs: &[AttrId]) -> String {
        let names: Vec<&str> = attrs.iter().map(|&a| self.attr_name(a)).collect();
        format!("({})", names.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Catalog {
        let mut c = Catalog::new();
        c.add_relation("persons", 10_000.0, &["id", "name", "jobid"]);
        c.add_relation("jobs", 100.0, &["id", "salary"]);
        c
    }

    #[test]
    fn relations_and_attrs_resolve() {
        let c = sample();
        let persons = c.relation_id("persons").unwrap();
        let jobs = c.relation_id("jobs").unwrap();
        assert_ne!(persons, jobs);
        assert_eq!(c.relation(persons).attrs.len(), 3);
        assert_eq!(c.relation(jobs).cardinality, 100.0);
        assert_eq!(c.num_attrs(), 5);
    }

    #[test]
    fn qualified_names_disambiguate() {
        let c = sample();
        let pid = c.attr("persons.id");
        let jid = c.attr("jobs.id");
        assert_ne!(pid, jid);
        // Unqualified "id" resolves to the first declaration.
        assert_eq!(c.attr("id"), pid);
        assert_eq!(c.attr_name(jid), "jobs.id");
        assert_eq!(c.attr_relation(jid), c.relation_id("jobs").unwrap());
    }

    #[test]
    fn indexes_attach_to_relations() {
        let mut c = sample();
        let jobs = c.relation_id("jobs").unwrap();
        let jid = c.attr("jobs.id");
        c.add_index(jobs, vec![jid], true);
        assert_eq!(c.relation(jobs).indexes.len(), 1);
        assert!(c.relation(jobs).indexes[0].clustered);
    }

    #[test]
    #[should_panic(expected = "duplicate relation")]
    fn duplicate_relation_panics() {
        let mut c = sample();
        c.add_relation("persons", 1.0, &["x"]);
    }

    #[test]
    fn distinct_values_are_recorded_and_clamped() {
        let mut c = sample();
        let pid = c.attr("persons.id");
        let name = c.attr("persons.name");
        assert_eq!(c.distinct_values(pid), None, "unset columns are sparse");
        assert!(!c.is_unique(pid));
        c.set_distinct_values(pid, 10_000.0);
        assert_eq!(c.distinct_values(pid), Some(10_000.0));
        assert!(c.is_unique(pid), "distinct == cardinality marks a key");
        c.set_distinct_values(name, 50.0);
        assert_eq!(c.distinct_values(name), Some(50.0));
        assert!(!c.is_unique(name));
        // Estimates are clamped into [1, cardinality].
        c.set_distinct_values(name, 1e12);
        assert_eq!(c.distinct_values(name), Some(10_000.0));
        c.set_distinct_values(name, 0.0);
        assert_eq!(c.distinct_values(name), Some(1.0));
    }

    #[test]
    fn render_ordering_is_readable() {
        let c = sample();
        let s = c.render_ordering(&[c.attr("persons.id"), c.attr("persons.name")]);
        assert_eq!(s, "(persons.id, persons.name)");
    }
}
