//! Catalog substrate: attributes, relations, indexes, and a TPC-H subset.
//!
//! The order-optimization framework (the paper's contribution, in
//! `ofw-core`) operates purely on interned attribute ids. This crate owns
//! the mapping between human-readable schema objects and those ids, plus
//! the physical metadata (cardinalities, indexes) the plan generator needs.

pub mod attr;
pub mod schema;
pub mod tpch;

pub use attr::{AttrId, RelId};
pub use schema::{Catalog, Index, Relation};
