//! Dense id types for schema objects.
//!
//! Attribute ids are the alphabet of every ordering in the system; they are
//! plain `u32` newtypes so that orderings are small, comparisons are integer
//! comparisons, and hot maps can use fast integer hashing (per the
//! performance guide: smaller integers + handles over strings).

/// Identifier of an attribute (column), unique across the whole catalog.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId(pub u32);

/// Identifier of a relation (table).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelId(pub u32);

impl AttrId {
    /// The raw index, usable for dense arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl RelId {
    /// The raw index, usable for dense arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for AttrId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl std::fmt::Debug for RelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_small() {
        assert_eq!(std::mem::size_of::<AttrId>(), 4);
        assert_eq!(std::mem::size_of::<RelId>(), 4);
        assert_eq!(std::mem::size_of::<Option<AttrId>>(), 8);
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", AttrId(3)), "a3");
        assert_eq!(format!("{:?}", RelId(1)), "r1");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(AttrId(1) < AttrId(2));
        assert_eq!(AttrId(7).index(), 7);
    }
}
