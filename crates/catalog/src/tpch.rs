//! The TPC-H / TPC-R schema subset used by the paper's §6.2 experiment
//! (TPC-R Query 8).
//!
//! Cardinalities are the scale-factor-1 row counts from the TPC
//! specification. Only the eight relations Query 8 touches are modeled;
//! order optimization needs no table data, just schema + statistics.

use crate::schema::Catalog;
use crate::RelId;

/// Row counts at scale factor 1 (TPC Benchmark R, revision 1.2.0).
pub const SF1_CARDINALITIES: [(&str, f64); 8] = [
    ("part", 200_000.0),
    ("supplier", 10_000.0),
    ("lineitem", 6_001_215.0),
    ("orders", 1_500_000.0),
    ("customer", 150_000.0),
    ("nation1", 25.0),
    ("nation2", 25.0),
    ("region", 5.0),
];

/// Builds the Query-8 relevant subset of the TPC-H schema.
///
/// `nation` appears twice in Query 8 (`n1`, `n2`); following the query's
/// aliasing we register it as two relations `nation1`/`nation2` so every
/// attribute occurrence gets a distinct id, exactly as an optimizer's
/// range-table would.
pub fn tpch_q8_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_relation(
        "part",
        200_000.0,
        &["p_partkey", "p_name", "p_type", "p_retailprice"],
    );
    c.add_relation(
        "supplier",
        10_000.0,
        &["s_suppkey", "s_name", "s_nationkey"],
    );
    c.add_relation(
        "lineitem",
        6_001_215.0,
        &[
            "l_orderkey",
            "l_partkey",
            "l_suppkey",
            "l_extendedprice",
            "l_discount",
        ],
    );
    c.add_relation(
        "orders",
        1_500_000.0,
        &["o_orderkey", "o_custkey", "o_orderdate", "o_year"],
    );
    c.add_relation("customer", 150_000.0, &["c_custkey", "c_nationkey"]);
    c.add_relation(
        "nation1",
        25.0,
        &["n1_nationkey", "n1_name", "n1_regionkey"],
    );
    c.add_relation(
        "nation2",
        25.0,
        &["n2_nationkey", "n2_name", "n2_regionkey"],
    );
    c.add_relation("region", 5.0, &["r_regionkey", "r_name"]);

    // Primary-key indexes (clustered), as any TPC system would have.
    let pk = |c: &Catalog, r: &str, a: &str| (c.relation_id(r).unwrap(), c.attr(a));
    let keys: Vec<(RelId, crate::AttrId)> = vec![
        pk(&c, "part", "p_partkey"),
        pk(&c, "supplier", "s_suppkey"),
        pk(&c, "orders", "o_orderkey"),
        pk(&c, "customer", "c_custkey"),
        pk(&c, "nation1", "n1_nationkey"),
        pk(&c, "nation2", "n2_nationkey"),
        pk(&c, "region", "r_regionkey"),
    ];
    for (rel, attr) in keys {
        c.add_index(rel, vec![attr], true);
    }
    // lineitem is clustered by orderkey in most TPC deployments.
    let li = c.relation_id("lineitem").unwrap();
    let lo = c.attr("l_orderkey");
    c.add_index(li, vec![lo], true);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_all_eight_relations() {
        let c = tpch_q8_catalog();
        for (name, card) in SF1_CARDINALITIES {
            let rel = c
                .relation_id(name)
                .unwrap_or_else(|| panic!("missing relation {name}"));
            assert_eq!(c.relation(rel).cardinality, card, "cardinality of {name}");
        }
    }

    #[test]
    fn nation_aliases_have_distinct_attrs() {
        let c = tpch_q8_catalog();
        assert_ne!(c.attr("n1_nationkey"), c.attr("n2_nationkey"));
    }

    #[test]
    fn pk_indexes_exist() {
        let c = tpch_q8_catalog();
        let orders = c.relation_id("orders").unwrap();
        assert!(c.relation(orders).indexes.iter().any(|i| i.clustered));
    }
}
