//! Synthetic base data scaled to the catalog's statistics.
//!
//! [`generate_columns`] materializes column-major base tables for a
//! query's relations, shaped so the differential executor harness and
//! the `table_exec` bench exercise the statistics the planner reasoned
//! with: each relation's row count tracks its catalog *cardinality*
//! (scaled by [`DataConfig::scale`] into the 10⁵–10⁷ range for release
//! benches, or clamped down for debug-mode tests), and each attribute's
//! value domain tracks the catalog's *distinct-value* estimate, so
//! selective group keys really produce few groups and key-like join
//! attributes really join sparsely. Fully deterministic per seed, and
//! independent of morsel size or thread count.

use ofw_catalog::Catalog;
use ofw_query::Query;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of a generated data set.
#[derive(Clone, Debug)]
pub struct DataConfig {
    /// Rows per relation = `cardinality × scale`, before clamping.
    pub scale: f64,
    /// Lower row clamp (so tiny relations still produce data).
    pub min_rows: usize,
    /// Upper row clamp (keeps debug-mode differential tests fast).
    pub max_rows: usize,
    /// Cap on every attribute's value domain. Tests pass a small cap so
    /// that the legacy constant predicates (`= 0`) and filters (`≤ 1`)
    /// keep a useful fraction of rows; benches pass `None`.
    pub domain_cap: Option<i64>,
    /// RNG seed — same seed, same data.
    pub seed: u64,
}

impl DataConfig {
    /// Small deterministic data for debug-mode differential tests:
    /// a few hundred rows per relation, domains capped at 16.
    pub fn small(seed: u64) -> Self {
        DataConfig {
            scale: 1e-3,
            min_rows: 24,
            max_rows: 400,
            domain_cap: Some(16),
            seed,
        }
    }
}

/// Generates per-relation columns, `out[qrel][attr][row]`, attributes in
/// the relation's catalog declaration order — the base-data shape the
/// vectorized engine scans.
pub fn generate_columns(
    catalog: &Catalog,
    query: &Query,
    config: &DataConfig,
) -> Vec<Vec<Vec<i64>>> {
    assert!(config.scale > 0.0, "scale must be positive");
    assert!(config.min_rows <= config.max_rows, "row clamps inverted");
    // Attributes appearing in join predicates: their domains must stay
    // proportional to the row count, whatever the stats or the cap say.
    let join_attrs: std::collections::HashSet<_> =
        query.joins.iter().flat_map(|j| [j.left, j.right]).collect();
    let mut rng = StdRng::seed_from_u64(config.seed);
    query
        .relations
        .iter()
        .map(|&rel| {
            let r = catalog.relation(rel);
            let rows = ((r.cardinality * config.scale).round() as usize)
                .clamp(config.min_rows, config.max_rows);
            let shrink = rows as f64 / r.cardinality.max(1.0);
            r.attrs
                .iter()
                .map(|&a| {
                    // Scale the distinct-value estimate with the row
                    // count so group selectivity survives the clamp; an
                    // attribute without statistics is key-like.
                    let distinct = catalog.distinct_values(a).unwrap_or(r.cardinality);
                    let mut domain = (distinct * shrink).round().max(1.0) as i64;
                    if let Some(cap) = config.domain_cap {
                        domain = domain.min(cap);
                    }
                    if join_attrs.contains(&a) {
                        // Keep each join's per-probe fan-out at ~2 or
                        // below: a narrow join-key domain multiplies a
                        // k-way join's output by (rows/domain)^(k-1),
                        // which turns a few hundred generated rows into
                        // gigabytes. Group keys keep their narrow
                        // domains — they only shape aggregation.
                        domain = domain.max(((rows as i64 + 1) / 2).max(1));
                    }
                    (0..rows).map(|_| rng.gen_range(0..domain)).collect()
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_statistics_shaped() {
        let (catalog, query) = crate::star_agg_query(&crate::StarAggConfig {
            dimensions: 3,
            seed: 11,
        });
        let cfg = DataConfig::small(5);
        let a = generate_columns(&catalog, &query, &cfg);
        let b = generate_columns(&catalog, &query, &cfg);
        assert_eq!(a, b, "same seed, same data");
        assert_eq!(a.len(), query.num_relations());
        let join_attrs: std::collections::HashSet<_> =
            query.joins.iter().flat_map(|j| [j.left, j.right]).collect();
        for (q, rel_cols) in a.iter().enumerate() {
            let r = catalog.relation(query.relations[q]);
            assert_eq!(rel_cols.len(), r.attrs.len());
            let rows = rel_cols[0].len();
            assert!((cfg.min_rows..=cfg.max_rows).contains(&rows));
            for (col, &attr) in rel_cols.iter().zip(&r.attrs) {
                assert_eq!(col.len(), rows, "columns are parallel");
                if join_attrs.contains(&attr) {
                    // Join keys escape the cap: their domain is floored
                    // at rows/2 so join fan-out stays bounded.
                    let distinct: std::collections::HashSet<i64> = col.iter().copied().collect();
                    assert!(col.iter().all(|&v| v >= 0));
                    assert!(distinct.len() * 4 >= rows.min(64), "{}", distinct.len());
                } else {
                    let cap = cfg.domain_cap.unwrap();
                    assert!(col.iter().all(|&v| (0..cap).contains(&v)));
                }
            }
        }
        let c = generate_columns(&catalog, &query, &DataConfig::small(6));
        assert_ne!(a, c, "different seeds differ");
    }

    #[test]
    fn selective_attributes_get_narrow_domains() {
        let (mut catalog, query) = crate::random_query(&crate::RandomQueryConfig {
            num_relations: 5,
            extra_edges: 0,
            seed: 2,
        });
        // Pick an r0 attribute that sits on no join edge — join keys
        // are deliberately exempt from narrow domains.
        let r0 = catalog.relation(query.relations[0]);
        let join_attrs: std::collections::HashSet<_> =
            query.joins.iter().flat_map(|j| [j.left, j.right]).collect();
        let (pos, &narrow) = r0
            .attrs
            .iter()
            .enumerate()
            .find(|(_, a)| !join_attrs.contains(a))
            .expect("r0 has a non-join attribute");
        catalog.set_distinct_values(narrow, 2.0);
        let cols = generate_columns(
            &catalog,
            &query,
            &DataConfig {
                scale: 1.0,
                min_rows: 200,
                max_rows: 200,
                domain_cap: None,
                seed: 9,
            },
        );
        // With 2 distinct values over any cardinality the scaled domain
        // stays tiny.
        let distinct: std::collections::HashSet<i64> = cols[0][pos].iter().copied().collect();
        assert!(distinct.len() <= 2, "{distinct:?}");
    }
}
