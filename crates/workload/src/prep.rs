//! Preparation-stress workloads: large `InputSpec`s built from
//! independent property *families*.
//!
//! The `table_prepare` bench needs specs whose NFSM→DFSM preparation
//! cost can be dialed into the hundreds of interesting properties while
//! staying predictable. The generator builds `families` independent
//! groups, each over its own disjoint attribute block, with
//! family-local orderings, groupings, head/tail pairs and functional
//! dependencies. Because no FD crosses a family boundary, the DFSM
//! decomposes: its reachable states are (up to the shared empty state)
//! the disjoint union of each family's states, so
//!
//! * total preparation cost grows linearly in the family count, and
//! * a query that probes only the first few families touches only a
//!   prefix of the DFSM's state numbering — exactly the shape where
//!   lazy determinization materializes a small fraction of the
//!   automaton.
//!
//! Everything is index-arithmetic deterministic (no RNG): the same
//! config always yields the same spec, and shifting `attr_base` yields
//! an attribute-renamed copy of the same *shape* — the repeated-shape
//! sweep the preparation-interning cache is measured on.

use ofw_catalog::AttrId;
use ofw_core::{Fd, Grouping, HeadTail, InputSpec, Ordering};

/// Shape of a preparation-stress spec.
#[derive(Clone, Debug)]
pub struct PrepSpecConfig {
    /// Independent property families (disjoint attribute blocks).
    pub families: usize,
    /// Produced orderings per family (each also tested one attribute
    /// longer, so sort enforcers and probes both have targets).
    pub orders_per_family: usize,
    /// Produced + tested groupings per family.
    pub groupings_per_family: usize,
    /// Tested head/tail pairs per family.
    pub head_tails_per_family: usize,
    /// Attributes per family block (clamped to at least 2).
    pub attrs_per_family: usize,
    /// Functional-dependency sets per family (one FD each).
    pub fds_per_family: usize,
    /// First attribute id — shift to rename every attribute while
    /// keeping the spec's canonical shape identical.
    pub attr_base: u32,
}

impl PrepSpecConfig {
    /// A deep-chain family shape: one produced ordering, one grouping
    /// and one head/tail pair over 4 attributes, with a 3-step FD
    /// chain (`a0→a1→a2→a3`) whose tested extensions form a per-family
    /// chain of DFSM states (~18 per family; wider attribute blocks
    /// blow up the artificial head/tail closure combinatorially).
    /// Scale `families` to scale the automaton; the chain depth is
    /// what makes shallow probes materialize only a fraction of it
    /// under lazy preparation.
    pub fn with_families(families: usize) -> Self {
        PrepSpecConfig {
            families,
            orders_per_family: 1,
            groupings_per_family: 1,
            head_tails_per_family: 1,
            attrs_per_family: 4,
            fds_per_family: 3,
            attr_base: 0,
        }
    }

    /// Same shape, different attribute names (for interning sweeps).
    pub fn shifted(mut self, attr_base: u32) -> Self {
        self.attr_base = attr_base;
        self
    }
}

/// Builds the spec. Family `f` owns the attribute block
/// `[attr_base + f·k, attr_base + (f+1)·k)` with `k = attrs_per_family`;
/// all properties and FDs of a family stay inside its block.
pub fn prep_spec(config: &PrepSpecConfig) -> InputSpec {
    let k = config.attrs_per_family.max(2);
    let mut spec = InputSpec::new();
    for f in 0..config.families {
        let attrs: Vec<AttrId> = (0..k)
            .map(|t| AttrId(config.attr_base + (f * k + t) as u32))
            .collect();
        let rot = |start: usize, len: usize| -> Vec<AttrId> {
            (0..len.min(k)).map(|j| attrs[(start + j) % k]).collect()
        };
        for i in 0..config.orders_per_family {
            let start = i % k;
            let len = 2 + (i / k) % (k - 1);
            spec.add_produced(Ordering::new(rot(start, len)));
            // Every longer rotation is reachable by chaining the
            // family's FDs — all tested, so the automaton grows a
            // *deep* per-family chain of interesting states (the shape
            // where lazy determinization pays off: probes that stop at
            // a shallow depth never force the deep tail).
            for longer in (len + 1)..=k {
                spec.add_tested(Ordering::new(rot(start, longer)));
            }
        }
        for j in 0..config.groupings_per_family {
            // Nonempty attribute subsets by bit pattern, cycling.
            let mask = 1 + j % ((1usize << k) - 1);
            let set: Vec<AttrId> = (0..k)
                .filter(|t| mask >> t & 1 == 1)
                .map(|t| attrs[t])
                .collect();
            spec.add_produced(Grouping::new(set.clone()));
            spec.add_tested(Grouping::new(set));
        }
        for h in 0..config.head_tails_per_family {
            let head = Grouping::new(vec![attrs[h % k]]);
            let tail = Ordering::new(vec![attrs[(h + 1) % k]]);
            spec.add_tested(HeadTail::new(head, tail));
        }
        for s in 0..config.fds_per_family {
            let lhs = attrs[s % k];
            let rhs = attrs[(s + 1) % k];
            spec.add_fd_set(vec![Fd::functional(&[lhs], rhs)]);
        }
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofw_core::{OrderingFramework, PruneConfig};

    #[test]
    fn deterministic_and_family_scaled() {
        let c4 = PrepSpecConfig::with_families(4);
        let s1 = prep_spec(&c4);
        let s2 = prep_spec(&c4);
        assert_eq!(s1.produced(), s2.produced());
        assert_eq!(s1.tested(), s2.tested());
        assert_eq!(s1.fd_sets(), s2.fd_sets());
        // 1 ordering + 1 grouping produced per family.
        assert_eq!(s1.produced().len(), 4 * 2);
        assert_eq!(s1.fd_sets().len(), 4 * 3);
    }

    /// Families are independent, so DFSM states must scale linearly —
    /// the property that makes the bench's costs predictable.
    #[test]
    fn dfsm_states_scale_linearly_in_families() {
        let states = |families: usize| {
            let spec = prep_spec(&PrepSpecConfig::with_families(families));
            let fw = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();
            fw.stats().dfsm_states
        };
        let (s2, s4) = (states(2), states(4));
        let per_family = s4 - s2; // 2 more families' worth
        assert!(per_family > 0);
        assert_eq!(states(6), s4 + per_family, "linear in the family count");
    }

    /// Shifting the attribute base renames attributes but preserves the
    /// shape — the automaton sizes must match exactly.
    #[test]
    fn shifted_specs_have_identical_shape() {
        let base = prep_spec(&PrepSpecConfig::with_families(3));
        let shifted = prep_spec(&PrepSpecConfig::with_families(3).shifted(1000));
        assert_ne!(base.produced(), shifted.produced());
        let f1 = OrderingFramework::prepare(&base, PruneConfig::default()).unwrap();
        let f2 = OrderingFramework::prepare(&shifted, PruneConfig::default()).unwrap();
        assert_eq!(f1.stats().nfsm_nodes, f2.stats().nfsm_nodes);
        assert_eq!(f1.stats().dfsm_states, f2.stats().dfsm_states);
    }
}
