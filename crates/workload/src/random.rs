//! Random join-graph queries (paper §7).
//!
//! A query over `n` relations starts as a chain `r0 — r1 — … — r(n-1)`
//! and gains `extra_edges` random additional join predicates between
//! non-adjacent relations; `extra_edges` ∈ {0, 1, 2} corresponds to the
//! paper's `n-1`, `n`, `n+1` edge rows. Each edge consumes a fresh
//! attribute on both endpoints (so different predicates never reuse a
//! column). Cardinalities are log-uniform, selectivities roughly
//! key/foreign-key-like, and about half of the relations get a clustered
//! index on their first join attribute so ordered scans exist.

use ofw_catalog::Catalog;
use ofw_query::{JoinEdge, Query};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of a random query.
#[derive(Clone, Debug)]
pub struct RandomQueryConfig {
    /// Number of relations (the paper sweeps 5–10).
    pub num_relations: usize,
    /// Join edges beyond the chain's `n-1` (the paper sweeps 0–2).
    pub extra_edges: usize,
    /// RNG seed — same seed, same query.
    pub seed: u64,
}

/// Generates a deterministic random query with its private catalog.
pub fn random_query(config: &RandomQueryConfig) -> (Catalog, Query) {
    let n = config.num_relations;
    assert!(n >= 2, "need at least two relations to join");
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Every relation gets one column per potential edge incident to it —
    // chain degree ≤ 2 plus the extra edges.
    let max_degree = 2 + config.extra_edges + 1;
    let mut catalog = Catalog::new();
    let mut query = Query::new();
    let mut degree_used = vec![0usize; n];
    for i in 0..n {
        // Log-uniform cardinalities between 1e2 and 1e6.
        let exponent = rng.gen_range(2.0..6.0);
        let card = 10f64.powf(exponent).round();
        let cols: Vec<String> = (0..max_degree).map(|k| format!("c{k}")).collect();
        let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
        let rel = catalog.add_relation(&format!("r{i}"), card, &col_refs);
        query.add_relation(&catalog, rel);
    }

    let next_attr = |catalog: &Catalog, degree_used: &mut Vec<usize>, rel: usize| {
        let k = degree_used[rel];
        degree_used[rel] += 1;
        catalog.attr(&format!("r{rel}.c{k}"))
    };

    let mut adjacent = vec![false; n * n];
    let add_edge = |query: &mut Query,
                    catalog: &Catalog,
                    degree_used: &mut Vec<usize>,
                    adjacent: &mut Vec<bool>,
                    rng: &mut StdRng,
                    a: usize,
                    b: usize| {
        let left = next_attr(catalog, degree_used, a);
        let right = next_attr(catalog, degree_used, b);
        // Key/foreign-key-flavored selectivity.
        let smaller = catalog
            .relation(query.relations[a])
            .cardinality
            .min(catalog.relation(query.relations[b]).cardinality);
        let jitter = rng.gen_range(0.5..2.0);
        let selectivity = (jitter / smaller).min(1.0);
        query.joins.push(JoinEdge {
            left,
            right,
            selectivity,
        });
        adjacent[a * n + b] = true;
        adjacent[b * n + a] = true;
    };

    // The chain.
    for i in 0..n - 1 {
        add_edge(
            &mut query,
            &catalog,
            &mut degree_used,
            &mut adjacent,
            &mut rng,
            i,
            i + 1,
        );
    }
    // Extra random edges between non-adjacent relations.
    let mut added = 0;
    let mut attempts = 0;
    while added < config.extra_edges && attempts < 1000 {
        attempts += 1;
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a == b || adjacent[a * n + b] {
            continue;
        }
        add_edge(
            &mut query,
            &catalog,
            &mut degree_used,
            &mut adjacent,
            &mut rng,
            a.min(b),
            a.max(b),
        );
        added += 1;
    }

    // Clustered indexes on roughly half the relations (on their first
    // join attribute) so ordered base plans exist.
    #[allow(clippy::needless_range_loop)] // i identifies the relation
    for i in 0..n {
        if degree_used[i] > 0 && rng.gen_bool(0.5) {
            let attr = catalog.attr(&format!("r{i}.c0"));
            catalog.add_index(query.relations[i], vec![attr], true);
        }
    }

    // Half the queries order their output by a random join attribute.
    if rng.gen_bool(0.5) {
        let j = rng.gen_range(0..query.joins.len());
        query.order_by = vec![query.joins[j].left];
    }

    (catalog, query)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(n: usize, extra: usize, seed: u64) -> RandomQueryConfig {
        RandomQueryConfig {
            num_relations: n,
            extra_edges: extra,
            seed,
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (c1, q1) = random_query(&config(6, 1, 42));
        let (c2, q2) = random_query(&config(6, 1, 42));
        assert_eq!(q1.joins.len(), q2.joins.len());
        for (a, b) in q1.joins.iter().zip(&q2.joins) {
            assert_eq!(a.left, b.left);
            assert_eq!(a.right, b.right);
            assert_eq!(a.selectivity, b.selectivity);
        }
        assert_eq!(c1.num_attrs(), c2.num_attrs());
        assert_eq!(q1.order_by, q2.order_by);
    }

    #[test]
    fn different_seeds_differ() {
        let (_, q1) = random_query(&config(6, 1, 1));
        let (_, q2) = random_query(&config(6, 1, 2));
        let same = q1
            .joins
            .iter()
            .zip(&q2.joins)
            .all(|(a, b)| a.selectivity == b.selectivity);
        assert!(!same);
    }

    #[test]
    fn edge_counts_match_the_paper_rows() {
        for n in 5..=10 {
            for extra in 0..=2 {
                let (_, q) = random_query(&config(n, extra, 7));
                assert_eq!(q.joins.len(), n - 1 + extra, "n={n} extra={extra}");
                assert!(q.is_fully_connected());
            }
        }
    }

    #[test]
    fn attributes_are_not_reused_across_edges() {
        let (_, q) = random_query(&config(8, 2, 3));
        let mut seen = std::collections::HashSet::new();
        for j in &q.joins {
            assert!(seen.insert(j.left), "attribute reused");
            assert!(seen.insert(j.right), "attribute reused");
        }
    }

    #[test]
    fn selectivities_are_sane() {
        let (_, q) = random_query(&config(10, 2, 9));
        for j in &q.joins {
            assert!(j.selectivity > 0.0 && j.selectivity <= 1.0);
        }
    }
}
