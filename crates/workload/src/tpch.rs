//! TPC-R Query 8, modeled exactly as the paper's §6.2 analyzes it.
//!
//! ```sql
//! select o_year, sum(case when nation = '[NATION]' then volume else 0 end)
//!        / sum(volume) as mkt_share
//! from ( select extract(year from o_orderdate) as o_year, …
//!        from part, supplier, lineitem, orders, customer,
//!             nation n1, nation n2, region
//!        where p_partkey = l_partkey and s_suppkey = l_suppkey
//!          and l_orderkey = o_orderkey and o_custkey = c_custkey
//!          and c_nationkey = n1.n_nationkey
//!          and n1.n_regionkey = r_regionkey and r_name = '[REGION]'
//!          and s_nationkey = n2.n_nationkey
//!          and o_orderdate between … and p_type = '[TYPE]' ) as all_nations
//! group by o_year order by o_year
//! ```
//!
//! The paper extracts seven equations, two constants (`r_name`,
//! `p_type`) and the grouping order `(o_year)`; the date range is a
//! plain filter (no FD).

use ofw_catalog::{tpch::tpch_q8_catalog, Catalog};
use ofw_query::{Query, QueryBuilder};

/// Builds TPC-R Query 8 over the scale-factor-1 catalog.
pub fn q8_query() -> (Catalog, Query) {
    let catalog = tpch_q8_catalog();
    let query = QueryBuilder::new(&catalog)
        .relation("part")
        .relation("supplier")
        .relation("lineitem")
        .relation("orders")
        .relation("customer")
        .relation("nation1")
        .relation("nation2")
        .relation("region")
        // Join predicates, selectivity ≈ 1/|pk side|.
        .join("p_partkey", "l_partkey", 1.0 / 200_000.0)
        .join("s_suppkey", "l_suppkey", 1.0 / 10_000.0)
        .join("l_orderkey", "o_orderkey", 1.0 / 1_500_000.0)
        .join("o_custkey", "c_custkey", 1.0 / 150_000.0)
        .join("c_nationkey", "n1_nationkey", 1.0 / 25.0)
        .join("n1_regionkey", "r_regionkey", 1.0 / 5.0)
        .join("s_nationkey", "n2_nationkey", 1.0 / 25.0)
        // r_name = '[REGION]' (one of five regions).
        .constant("r_name", 1.0 / 5.0)
        // p_type = '[TYPE]' (one of 150 types).
        .constant("p_type", 1.0 / 150.0)
        // o_orderdate between 1995-01-01 and 1996-12-31 (≈ 2/7 years).
        .filter("o_orderdate", 0.3)
        .group_by(&["o_year"])
        .order_by(&["o_year"])
        .build();
    (catalog, query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofw_query::extract::ExtractOptions;

    #[test]
    fn shape_matches_section_6_2() {
        let (_, q) = q8_query();
        assert_eq!(q.num_relations(), 8);
        assert_eq!(q.joins.len(), 7);
        assert_eq!(q.constants.len(), 2);
        assert_eq!(q.filters.len(), 1);
        assert!(q.is_fully_connected());
    }

    #[test]
    fn extraction_matches_the_paper() {
        // §6.2: F has 9 entries — 7 equations + 2 constants.
        let (c, q) = q8_query();
        let ex = ofw_query::extract(&c, &q, &ExtractOptions::default());
        assert_eq!(ex.spec.fd_sets().len(), 9);
        // O_P: 14 join attributes + (o_year); the PK index orders
        // coincide with join attributes except lineitem's l_orderkey
        // (also a join attribute) — 15 distinct singles.
        let produced = ex.spec.produced().len();
        assert!(
            (15..=17).contains(&produced),
            "paper lists 16 produced orders, got {produced}"
        );
        // All interesting orders are single attributes, as in the paper.
        assert!(ex.spec.interesting().all(|o| o.len() == 1));
    }

    #[test]
    fn with_tested_selection_orders() {
        // The paper's optional O_T^I = {(r_name), (o_orderdate)}; our
        // extraction also lists (p_type).
        let (c, q) = q8_query();
        let ex = ofw_query::extract(
            &c,
            &q,
            &ExtractOptions {
                tested_selection_orders: true,
                ..ExtractOptions::default()
            },
        );
        assert_eq!(ex.spec.tested().len(), 3);
    }
}
