//! Grouping-heavy workloads for the combined ordering + grouping
//! framework (VLDB'04): random join graphs decorated with `group by` /
//! `select distinct` requirements, plus a TPC-H-style aggregation query
//! whose optimal plan exploits early hash-grouping.

use crate::random::{random_query, RandomQueryConfig};
use ofw_catalog::{tpch::tpch_q8_catalog, Catalog};
use ofw_query::{Query, QueryBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of a random grouping query.
#[derive(Clone, Debug)]
pub struct GroupingQueryConfig {
    /// Number of relations.
    pub num_relations: usize,
    /// Join edges beyond the chain's `n-1`.
    pub extra_edges: usize,
    /// RNG seed — same seed, same query.
    pub seed: u64,
}

/// Generates a deterministic random join query with an aggregation
/// requirement: a `group by` (or, a quarter of the time, a `select
/// distinct`) over one or two attributes of a random relation;
/// sometimes an `order by` over the same attributes rides along, so
/// sort-based and hash-based aggregation genuinely compete.
pub fn grouping_query(config: &GroupingQueryConfig) -> (Catalog, Query) {
    let (catalog, mut query) = random_query(&RandomQueryConfig {
        num_relations: config.num_relations,
        extra_edges: config.extra_edges,
        seed: config.seed,
    });
    // Decorate deterministically from a decoupled stream, so the join
    // graph stays byte-identical to the plain random workload.
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x6752_0404);
    let rel = rng.gen_range(0..config.num_relations);
    let mut attrs = vec![catalog.attr(&format!("r{rel}.c0"))];
    if rng.gen_bool(0.5) {
        attrs.push(catalog.attr(&format!("r{rel}.c1")));
    }
    query.order_by.clear();
    if rng.gen_bool(0.25) {
        query.distinct = attrs.clone();
    } else {
        query.group_by = attrs.clone();
        if rng.gen_bool(0.3) {
            query.order_by = attrs;
        }
    }
    (catalog, query)
}

/// A TPC-H-style aggregation query ("customers per nation", Q13/Q10
/// flavored) over the Query-8 catalog:
///
/// ```sql
/// select n1.n_name, count(*)
/// from customer, orders, nation n1
/// where o_custkey = c_custkey and c_nationkey = n1.n_nationkey
/// group by n1.n_name
/// ```
///
/// The grouping attribute lives on the tiny `nation` relation and has
/// no index, while the joins fan out to 1.5M orders — the shape where
/// hash-grouping the 25-row input early and streaming the aggregate
/// beats both sort-based aggregation and hashing the full join output.
pub fn q13_style_query() -> (Catalog, Query) {
    let catalog = tpch_q8_catalog();
    let query = QueryBuilder::new(&catalog)
        .relation("customer")
        .relation("orders")
        .relation("nation1")
        .join("o_custkey", "c_custkey", 1.0 / 150_000.0)
        .join("c_nationkey", "n1_nationkey", 1.0 / 25.0)
        .group_by(&["n1_name"])
        .build();
    (catalog, query)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_always_aggregating() {
        for seed in 0..20u64 {
            let config = GroupingQueryConfig {
                num_relations: 5,
                extra_edges: 1,
                seed,
            };
            let (_, q1) = grouping_query(&config);
            let (_, q2) = grouping_query(&config);
            assert_eq!(q1.group_by, q2.group_by);
            assert_eq!(q1.distinct, q2.distinct);
            assert_eq!(q1.order_by, q2.order_by);
            assert!(
                !q1.effective_group_by().is_empty(),
                "every grouping query aggregates"
            );
            assert!(q1.is_fully_connected());
        }
    }

    #[test]
    fn mixes_group_by_and_distinct() {
        let mut group_by = 0;
        let mut distinct = 0;
        for seed in 0..40u64 {
            let (_, q) = grouping_query(&GroupingQueryConfig {
                num_relations: 4,
                extra_edges: 0,
                seed,
            });
            if q.distinct.is_empty() {
                group_by += 1;
            } else {
                distinct += 1;
            }
        }
        assert!(group_by > 0 && distinct > 0, "{group_by}/{distinct}");
    }

    #[test]
    fn q13_style_shape() {
        let (_, q) = q13_style_query();
        assert_eq!(q.num_relations(), 3);
        assert_eq!(q.joins.len(), 2);
        assert_eq!(q.group_by.len(), 1);
        assert!(q.order_by.is_empty());
        assert!(q.is_fully_connected());
    }
}
