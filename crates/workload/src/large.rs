//! Large join-graph topologies for the parallel-DP scaling sweeps.
//!
//! Four classic shapes, sized well past the paper's 5–10 relations:
//!
//! * **chain** — `r0 — r1 — … — r(n-1)`. Connected subsets are the
//!   O(n²) intervals, so exhaustive DP stays polynomial and the sweep
//!   can run to 100+ relations. This is the shape that exercises the
//!   >64-relation `BitSet` path end to end.
//! * **cycle** — a chain plus the closing edge `r(n-1) — r0`. Still
//!   O(n²) connected subsets (the circular intervals), but the size-`s`
//!   pairing loop of a size-layered DP wades through quadratically many
//!   disconnected candidates to find them — the cheapest shape that
//!   separates candidate-driven from neighborhood-driven enumeration.
//! * **star** — a center joined to `n-1` leaves (the canonical
//!   snowflake/fact-table shape). Connected subsets are the center plus
//!   any leaf subset: Θ(2ⁿ), so the sweep caps it low.
//! * **clique** — every pair joined. Exhaustive DP visits Θ(3ⁿ) ordered
//!   partitions, the densest per-layer parallelism available — and the
//!   reason no exhaustive optimizer (serial or parallel) can sweep a
//!   40-relation clique: at n = 40 the DP table alone would hold 2⁴⁰
//!   subsets. The sweep sizes cliques so a cell stays in seconds; past
//!   the enumeration budget, the linearized fallback takes over.
//!
//! Generators are deterministic per seed. Roughly half the relations
//! get a clustered index on their first join attribute and the query
//! orders its output by one join attribute, so interesting orders exist
//! and the order frameworks have real work at every scale.

use ofw_catalog::Catalog;
use ofw_query::{JoinEdge, Query};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Join-graph shape of a [`large_query`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// `r0 — r1 — … — r(n-1)`: O(n²) connected subsets.
    Chain,
    /// A chain plus the closing edge `r(n-1) — r0`: still O(n²)
    /// connected subsets, but size-layered DP pays a quadratic
    /// disconnected-candidate overhead to find them.
    Cycle,
    /// Center `r0` joined to every other relation: Θ(2ⁿ) subsets.
    Star,
    /// Every pair joined: Θ(3ⁿ) ordered partitions.
    Clique,
}

impl Topology {
    /// Lower-case name for tables and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Topology::Chain => "chain",
            Topology::Cycle => "cycle",
            Topology::Star => "star",
            Topology::Clique => "clique",
        }
    }
}

/// Shape of a large scaling query.
#[derive(Clone, Debug)]
pub struct LargeQueryConfig {
    /// Join-graph shape.
    pub topology: Topology,
    /// Number of relations.
    pub num_relations: usize,
    /// RNG seed — same seed, same query.
    pub seed: u64,
}

/// Generates a deterministic large query with its private catalog.
pub fn large_query(config: &LargeQueryConfig) -> (Catalog, Query) {
    let n = config.num_relations;
    assert!(n >= 2, "need at least two relations to join");
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Column budget: one column per potential incident edge.
    let max_degree = match config.topology {
        Topology::Chain | Topology::Cycle => 2,
        Topology::Star => n - 1,
        Topology::Clique => n - 1,
    };

    let mut catalog = Catalog::new();
    let mut query = Query::new();
    let mut degree_used = vec![0usize; n];
    for i in 0..n {
        // Log-uniform cardinalities between 1e2 and 1e5 (narrower than
        // the small random workload so join outputs stay finite across
        // 100-relation chains).
        let exponent = rng.gen_range(2.0..5.0);
        let card = 10f64.powf(exponent).round();
        let cols: Vec<String> = (0..max_degree).map(|k| format!("c{k}")).collect();
        let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
        let rel = catalog.add_relation(&format!("r{i}"), card, &col_refs);
        query.add_relation(&catalog, rel);
    }

    let mut add_edge =
        |query: &mut Query, catalog: &Catalog, rng: &mut StdRng, a: usize, b: usize| {
            let ka = degree_used[a];
            let kb = degree_used[b];
            degree_used[a] += 1;
            degree_used[b] += 1;
            let left = catalog.attr(&format!("r{a}.c{ka}"));
            let right = catalog.attr(&format!("r{b}.c{kb}"));
            // Key/foreign-key-flavored selectivity.
            let smaller = catalog
                .relation(query.relations[a])
                .cardinality
                .min(catalog.relation(query.relations[b]).cardinality);
            let jitter = rng.gen_range(0.5..2.0);
            let selectivity = (jitter / smaller).min(1.0);
            query.joins.push(JoinEdge {
                left,
                right,
                selectivity,
            });
        };

    match config.topology {
        Topology::Chain => {
            for i in 0..n - 1 {
                add_edge(&mut query, &catalog, &mut rng, i, i + 1);
            }
        }
        Topology::Cycle => {
            for i in 0..n - 1 {
                add_edge(&mut query, &catalog, &mut rng, i, i + 1);
            }
            add_edge(&mut query, &catalog, &mut rng, n - 1, 0);
        }
        Topology::Star => {
            for leaf in 1..n {
                add_edge(&mut query, &catalog, &mut rng, 0, leaf);
            }
        }
        Topology::Clique => {
            for a in 0..n {
                for b in a + 1..n {
                    add_edge(&mut query, &catalog, &mut rng, a, b);
                }
            }
        }
    }

    // Clustered indexes on roughly half the relations (first join
    // attribute), so ordered base plans exist.
    #[allow(clippy::needless_range_loop)] // i identifies the relation
    for i in 0..n {
        if degree_used[i] > 0 && rng.gen_bool(0.5) {
            let attr = catalog.attr(&format!("r{i}.c0"));
            catalog.add_index(query.relations[i], vec![attr], true);
        }
    }

    // Order the output by one join attribute so a required output order
    // (and therefore enforcer/merge-join interplay) exists at any n.
    let j = rng.gen_range(0..query.joins.len());
    query.order_by = vec![query.joins[j].left];

    (catalog, query)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(t: Topology, n: usize, seed: u64) -> LargeQueryConfig {
        LargeQueryConfig {
            topology: t,
            num_relations: n,
            seed,
        }
    }

    #[test]
    fn edge_counts_per_topology() {
        let (_, chain) = large_query(&config(Topology::Chain, 70, 1));
        assert_eq!(chain.joins.len(), 69);
        assert!(chain.is_fully_connected());

        let (_, cycle) = large_query(&config(Topology::Cycle, 12, 1));
        assert_eq!(cycle.joins.len(), 12);
        assert!(cycle.is_fully_connected());
        let last = cycle.joins.last().unwrap();
        assert_eq!(cycle.owner(last.left), 11, "closing edge starts at r11");
        assert_eq!(cycle.owner(last.right), 0, "closing edge ends at r0");

        let (_, star) = large_query(&config(Topology::Star, 12, 1));
        assert_eq!(star.joins.len(), 11);
        assert!(star.is_fully_connected());

        let (_, clique) = large_query(&config(Topology::Clique, 8, 1));
        assert_eq!(clique.joins.len(), 8 * 7 / 2);
        assert!(clique.is_fully_connected());
    }

    #[test]
    fn deterministic_per_seed() {
        for t in [
            Topology::Chain,
            Topology::Cycle,
            Topology::Star,
            Topology::Clique,
        ] {
            let (c1, q1) = large_query(&config(t, 9, 77));
            let (c2, q2) = large_query(&config(t, 9, 77));
            assert_eq!(c1.num_attrs(), c2.num_attrs());
            assert_eq!(q1.order_by, q2.order_by);
            assert_eq!(q1.joins.len(), q2.joins.len());
            for (a, b) in q1.joins.iter().zip(&q2.joins) {
                assert_eq!((a.left, a.right), (b.left, b.right));
                assert_eq!(a.selectivity, b.selectivity);
            }
        }
    }

    #[test]
    fn attributes_are_not_reused_across_edges() {
        for t in [
            Topology::Chain,
            Topology::Cycle,
            Topology::Star,
            Topology::Clique,
        ] {
            let (_, q) = large_query(&config(t, 7, 3));
            let mut seen = std::collections::HashSet::new();
            for j in &q.joins {
                assert!(seen.insert(j.left), "attribute reused");
                assert!(seen.insert(j.right), "attribute reused");
            }
            assert!(!q.order_by.is_empty());
        }
    }

    #[test]
    fn chains_scale_past_the_u64_boundary() {
        let (_, q) = large_query(&config(Topology::Chain, 100, 5));
        assert_eq!(q.num_relations(), 100);
        assert_eq!(q.all_relations_set().len(), 100);
    }
}
