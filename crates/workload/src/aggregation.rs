//! Aggregation-heavy workloads for the aggregation-placement dimension
//! (group-join + eager/lazy push-down): star schemas with a large fact
//! table, small dimensions, *selective group keys* and full
//! distinct-value statistics — the shape where pre-aggregating the fact
//! table below the joins collapses the intermediate cardinalities by
//! orders of magnitude — plus a TPC-H-flavored "orders per customer"
//! query whose optimal plan is a fused group-join.

use ofw_catalog::Catalog;
use ofw_query::{AggFunc, Query, QueryBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of a random star-schema aggregation query.
#[derive(Clone, Debug)]
pub struct StarAggConfig {
    /// Number of dimension tables (relations = `dimensions + 1`).
    pub dimensions: usize,
    /// RNG seed — same seed, same query.
    pub seed: u64,
}

/// Generates a deterministic star-schema aggregation query: a fact
/// table of 10⁵–10⁶ rows with one measure column and one foreign key
/// per dimension, joined to small dimensions (10–200 rows) whose
/// selective group columns (2–20 distinct values) carry the `group by`.
/// Aggregates are `sum(fact.v)` plus sometimes `count(*)` or
/// `min(fact.v)`; occasionally the group key also becomes the output
/// order. Every column gets a distinct-value estimate, dimension
/// primary keys are unique (schema FDs), and some relations get
/// clustered indexes so ordered/grouped streams exist.
pub fn star_agg_query(config: &StarAggConfig) -> (Catalog, Query) {
    let d = config.dimensions.max(1);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut catalog = Catalog::new();

    // Fact table: one fk per dimension plus a measure.
    let fact_card = 10f64.powf(rng.gen_range(5.0..6.0)).round();
    let fk_cols: Vec<String> = (0..d).map(|i| format!("fk{i}")).collect();
    let mut fact_cols: Vec<&str> = fk_cols.iter().map(String::as_str).collect();
    fact_cols.push("v");
    catalog.add_relation("fact", fact_card, &fact_cols);
    let v = catalog.attr("fact.v");
    catalog.set_distinct_values(v, (fact_card / 10.0).max(2.0));

    // Dimensions: selective group column; join columns are unique
    // primary keys for some dimensions and *fanning* (multi-match) keys
    // for others — the fan-out is what makes the unaggregated join
    // pyramid explode and eager push-down pay by orders of magnitude.
    let mut dim_cards = Vec::with_capacity(d);
    let mut fanouts = Vec::with_capacity(d);
    for i in 0..d {
        let dim_card = 10f64.powf(rng.gen_range(0.7..1.6)).round().max(2.0);
        let fanout = if rng.gen_bool(0.5) {
            rng.gen_range(2.0..10.0_f64).round().min(dim_card)
        } else {
            1.0
        };
        dim_cards.push(dim_card);
        fanouts.push(fanout);
        catalog.add_relation(&format!("dim{i}"), dim_card, &["pk", "g"]);
        let pk = catalog.attr(&format!("dim{i}.pk"));
        let g = catalog.attr(&format!("dim{i}.g"));
        catalog.set_distinct_values(pk, (dim_card / fanout).max(1.0));
        let groups = rng.gen_range(2.0..20.0_f64).round().min(dim_card);
        catalog.set_distinct_values(g, groups);
        let fk = catalog.attr(&format!("fact.fk{i}"));
        catalog.set_distinct_values(fk, (dim_card / fanout).max(1.0));
        if rng.gen_bool(0.4) {
            let rel = catalog.relation_id(&format!("dim{i}")).unwrap();
            catalog.add_index(rel, vec![pk], true);
        }
    }
    // Sometimes the fact table is clustered by its first foreign key —
    // the stream that makes *streaming* partial aggregation free.
    if rng.gen_bool(0.4) {
        let rel = catalog.relation_id("fact").unwrap();
        let fk0 = catalog.attr("fact.fk0");
        catalog.add_index(rel, vec![fk0], true);
    }

    let mut qb = QueryBuilder::new(&catalog).relation("fact");
    for i in 0..d {
        qb = qb.relation(&format!("dim{i}"));
    }
    for (i, &dim_card) in dim_cards.iter().enumerate() {
        qb = qb.join(
            &format!("fact.fk{i}"),
            &format!("dim{i}.pk"),
            (fanouts[i] / dim_card).min(1.0),
        );
    }
    // Group by the selective key of one dimension (sometimes two).
    let first = rng.gen_range(0..d);
    let mut group: Vec<String> = vec![format!("dim{first}.g")];
    if d > 1 && rng.gen_bool(0.3) {
        let second = (first + 1) % d;
        group.push(format!("dim{second}.g"));
    }
    let group_refs: Vec<&str> = group.iter().map(String::as_str).collect();
    qb = qb.group_by(&group_refs).aggregate(AggFunc::Sum, "fact.v");
    if rng.gen_bool(0.3) {
        qb = qb.count_star();
    }
    if rng.gen_bool(0.2) {
        qb = qb.aggregate(AggFunc::Min, "fact.v");
    }
    if rng.gen_bool(0.25) {
        qb = qb.order_by(&group_refs);
    }
    let query = qb.build();
    (catalog, query)
}

/// [`star_agg_query`] with the output order pinned to the group key —
/// the `GROUP BY k ORDER BY k` shape of the partial-sort experiment.
/// The catalog and join graph are byte-identical to the base generator
/// (the base query's own optional `order by` over the same attributes
/// is simply made unconditional), so pre/post comparisons isolate the
/// ordering requirement.
pub fn star_agg_query_ordered(config: &StarAggConfig) -> (Catalog, Query) {
    let (catalog, mut query) = star_agg_query(config);
    query.order_by = query.group_by.clone();
    (catalog, query)
}

/// The partial-sort showcase: TPC-H-flavored "orders per customer,
/// listed by customer"
///
/// ```sql
/// select o_custkey, count(*), sum(o_totalprice)
/// from customer, orders
/// where o_custkey = c_custkey
/// group by o_custkey
/// order by o_custkey
/// ```
///
/// Unlike [`groupjoin_showcase_query`], *neither* relation has a useful
/// index, so hash aggregation wins the `group by` — and its output is
/// grouped by the 150 000-value key but unsorted. The `order by` over
/// that key is then the dominant enforcement decision: a full root sort
/// pays `O(G · log G)` over 150 000 groups, while the partial-sort
/// enforcer sees the head grouping already satisfied and pays the
/// linear block pass — the head/tail payoff at its most visible.
pub fn partialsort_showcase_query() -> (Catalog, Query) {
    let mut catalog = Catalog::new();
    catalog.add_relation("customer", 150_000.0, &["c_custkey", "c_name"]);
    catalog.add_relation("orders", 1_500_000.0, &["o_custkey", "o_totalprice"]);
    let ck = catalog.attr("c_custkey");
    let ok = catalog.attr("o_custkey");
    catalog.set_distinct_values(ck, 150_000.0); // primary key
    catalog.set_distinct_values(ok, 150_000.0);
    catalog.set_distinct_values(catalog.attr("o_totalprice"), 1_000_000.0);
    let query = QueryBuilder::new(&catalog)
        .relation("customer")
        .relation("orders")
        .join("o_custkey", "c_custkey", 1.0 / 150_000.0)
        .group_by(&["o_custkey"])
        .order_by(&["o_custkey"])
        .count_star()
        .aggregate(AggFunc::Sum, "o_totalprice")
        .build();
    (catalog, query)
}

/// The group-join showcase: TPC-H-flavored "orders per customer"
///
/// ```sql
/// select c_custkey, count(*), sum(o_totalprice)
/// from customer, orders
/// where o_custkey = c_custkey
/// group by c_custkey
/// ```
///
/// `customer` is clustered by its (unique) primary key, `orders` has no
/// useful index, and the group key is the probe side's join key — so a
/// fused group-join over the index-ordered probe beats eager
/// pre-aggregation of `orders` (hashing 1.5M rows collapses them only
/// 10×) *and* hash aggregation at the root (which re-hashes the full
/// join output).
pub fn groupjoin_showcase_query() -> (Catalog, Query) {
    let mut catalog = Catalog::new();
    catalog.add_relation("customer", 150_000.0, &["c_custkey", "c_name"]);
    catalog.add_relation("orders", 1_500_000.0, &["o_custkey", "o_totalprice"]);
    let ck = catalog.attr("c_custkey");
    let ok = catalog.attr("o_custkey");
    catalog.set_distinct_values(ck, 150_000.0); // primary key
    catalog.set_distinct_values(ok, 150_000.0);
    catalog.set_distinct_values(catalog.attr("o_totalprice"), 1_000_000.0);
    let cust = catalog.relation_id("customer").unwrap();
    catalog.add_index(cust, vec![ck], true);
    let query = QueryBuilder::new(&catalog)
        .relation("customer")
        .relation("orders")
        .join("o_custkey", "c_custkey", 1.0 / 150_000.0)
        .group_by(&["c_custkey"])
        .count_star()
        .aggregate(AggFunc::Sum, "o_totalprice")
        .build();
    (catalog, query)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_always_aggregating() {
        for seed in 0..20u64 {
            for d in 1..=4usize {
                let config = StarAggConfig {
                    dimensions: d,
                    seed,
                };
                let (c1, q1) = star_agg_query(&config);
                let (_, q2) = star_agg_query(&config);
                assert_eq!(q1.group_by, q2.group_by);
                assert_eq!(q1.aggregates, q2.aggregates);
                assert!(q1.has_aggregates());
                assert!(!q1.group_by.is_empty());
                assert!(q1.is_fully_connected());
                assert_eq!(q1.num_relations(), d + 1);
                // Every group column has a (selective) distinct estimate.
                for &g in &q1.group_by {
                    let dv = c1.distinct_values(g).expect("stats set");
                    assert!(dv <= 20.0, "selective group keys");
                }
            }
        }
    }

    #[test]
    fn ordered_star_pins_order_by_to_the_group_key() {
        for seed in 0..10u64 {
            let config = StarAggConfig {
                dimensions: 2,
                seed,
            };
            let (_, base) = star_agg_query(&config);
            let (_, ordered) = star_agg_query_ordered(&config);
            assert_eq!(ordered.order_by, ordered.group_by);
            assert_eq!(ordered.group_by, base.group_by, "join graph untouched");
            assert_eq!(ordered.aggregates, base.aggregates);
        }
    }

    #[test]
    fn partialsort_showcase_shape() {
        let (c, q) = partialsort_showcase_query();
        assert_eq!(q.num_relations(), 2);
        assert_eq!(q.group_by, vec![c.attr("o_custkey")]);
        assert_eq!(q.order_by, q.group_by);
        assert!(q.has_aggregates());
        // No indexes anywhere: the grouped-but-unsorted hash output is
        // the only cheap path to adjacency.
        for &rel in &q.relations {
            assert!(c.relation(rel).indexes.is_empty());
        }
    }

    #[test]
    fn showcase_shape() {
        let (c, q) = groupjoin_showcase_query();
        assert_eq!(q.num_relations(), 2);
        assert!(c.is_unique(c.attr("c_custkey")));
        assert_eq!(q.group_by, vec![c.attr("c_custkey")]);
        assert_eq!(q.aggregates.len(), 2);
        assert!(q.is_fully_connected());
    }
}
