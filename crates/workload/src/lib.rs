//! # ofw-workload — experiment workloads
//!
//! The workload families of the paper's evaluation, plus the grouping
//! extension's:
//!
//! * [`random`] — randomly generated join queries: "we generated queries
//!   with 5–10 relations and a varying number of join predicates … We
//!   always started from a chain query and then randomly added some
//!   edges" (§7, Figs. 13–14). Fully deterministic given a seed.
//! * [`tpch`] — TPC-R Query 8 exactly as analyzed in §6.2: eight
//!   relations, seven equi-join predicates, two constant predicates, a
//!   date range filter and `group by o_year`.
//! * [`grouping`] — grouping-heavy workloads for the combined
//!   ordering + grouping framework: random join graphs with `group by`
//!   / `select distinct` requirements, and a TPC-H-style aggregation
//!   query rewarding early hash-grouping.
//! * [`large`] — chain/star/clique topologies sized for the parallel-DP
//!   scaling sweeps (10–100 relations, incl. the >64-relation regime).
//! * [`aggregation`] — star-schema aggregation queries with selective
//!   group keys and distinct-value statistics, the workload class where
//!   eager aggregation push-down and group-joins pay off.
//! * [`data`] — deterministic column-major base data scaled to the
//!   catalog's cardinality and distinct-value statistics, feeding the
//!   vectorized executor's differential harness and benches.
//! * [`prep`] — preparation-stress `InputSpec`s made of independent
//!   property families over disjoint attribute blocks, sized into the
//!   hundreds of interesting orders for the `table_prepare` bench.

pub mod aggregation;
pub mod data;
pub mod grouping;
pub mod large;
pub mod prep;
pub mod random;
pub mod tpch;

pub use aggregation::{
    groupjoin_showcase_query, partialsort_showcase_query, star_agg_query, star_agg_query_ordered,
    StarAggConfig,
};
pub use data::{generate_columns, DataConfig};
pub use grouping::{grouping_query, q13_style_query, GroupingQueryConfig};
pub use large::{large_query, LargeQueryConfig, Topology};
pub use prep::{prep_spec, PrepSpecConfig};
pub use random::{random_query, RandomQueryConfig};
pub use tpch::q8_query;
