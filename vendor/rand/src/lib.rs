//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *subset* of rand 0.8's API that it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`]
//! over integer and float ranges, and [`Rng::gen_bool`]. The generator is
//! xoshiro256++ seeded via SplitMix64 — high-quality, deterministic per
//! seed, and *not* bit-compatible with upstream `StdRng` (nothing in the
//! workspace depends on upstream's exact stream; tests only require
//! determinism per seed).

use core::ops::{Range, RangeInclusive};

/// Streams of random data, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates the generator from a `u64` seed (upstream's provided
    /// method; here it is the only constructor).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from the given range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Maps 64 random bits to a float in `[0, 1)` (53-bit mantissa path).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Scalars `gen_range` can sample uniformly, mirroring
/// `rand::distributions::uniform::SampleUniform`. The single generic
/// [`SampleRange`] impl below depends on this shape: per-type range
/// impls would leave `gen_range(0.5..2.0)` ambiguous between `f32` and
/// `f64`, which upstream rand resolves exactly this way.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "gen_range: empty range");
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                if inclusive {
                    assert!(lo <= hi, "gen_range: empty range");
                    // Inclusive: scale by a fraction that reaches 1.0.
                    let frac = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                    return lo + (hi - lo) * frac;
                }
                assert!(lo < hi, "gen_range: empty range");
                // Exclusive: the narrowing cast (f32) or the final
                // rounding step can land exactly on `hi`; resample the
                // handful of draws where that happens.
                loop {
                    let v = lo + (hi - lo) * unit_f64(rng.next_u64()) as $t;
                    if v < hi {
                        return v;
                    }
                }
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Ranges that can be sampled from, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Samples one value uniformly from `self`.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_between(lo, hi, true, rng)
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// with SplitMix64 seed expansion.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn exclusive_float_range_never_returns_hi() {
        // f32's narrowing cast rounds unit fractions near 1.0 up to 1.0
        // roughly once per 2^25 draws; the resample loop must hide that.
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200_000 {
            let x: f32 = rng.gen_range(0.0f32..1.0);
            assert!(x < 1.0);
        }
    }

    #[test]
    fn inclusive_float_range_accepts_degenerate_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(rng.gen_range(2.5f64..=2.5), 2.5);
        for _ in 0..1000 {
            let x = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..=6_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..20).all(|_| a.gen_range(0u64..u64::MAX) == b.gen_range(0u64..u64::MAX));
        assert!(!same);
    }
}
