//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the subset of criterion 0.5's API the workspace benches use
//! ([`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`black_box`], [`criterion_group!`],
//! [`criterion_main!`]) backed by a simple wall-clock harness: a short
//! warm-up, then timed batches, then a `median / mean / total iters`
//! report per benchmark. No statistics beyond that — swap in the real
//! criterion when the registry is reachable to get its full analysis.

use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported with criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The stand-in only uses this
/// to pick the number of routine calls per timed batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many calls per batch.
    SmallInput,
    /// Large inputs: few calls per batch.
    LargeInput,
    /// One call per batch.
    PerIteration,
}

impl BatchSize {
    fn batch_len(self) -> usize {
        match self {
            BatchSize::SmallInput => 16,
            BatchSize::LargeInput => 4,
            BatchSize::PerIteration => 1,
        }
    }
}

/// The benchmark context handed to `bench_function` closures.
pub struct Criterion {
    warm_up: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(150),
            measure: Duration::from_millis(600),
        }
    }
}

impl Criterion {
    /// Runs one benchmark and prints a one-line report.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measure: self.measure,
            samples: Vec::new(),
            total_iters: 0,
        };
        f(&mut b);
        b.report(id);
        self
    }
}

/// Per-benchmark timing driver.
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    /// Per-iteration wall-clock samples, in nanoseconds.
    samples: Vec<f64>,
    total_iters: u64,
}

impl Bencher {
    /// Times `routine` in adaptively sized batches.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up and batch-size calibration: grow the batch until one
        // batch costs ≳ 1/20 of the measurement budget.
        let mut batch: u64 = 1;
        let warm_deadline = Instant::now() + self.warm_up;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if Instant::now() >= warm_deadline {
                if dt < self.measure / 20 {
                    batch = batch.saturating_mul(2);
                }
                break;
            }
            if dt < self.measure / 20 {
                batch = batch.saturating_mul(2);
            }
        }

        let deadline = Instant::now() + self.measure;
        while Instant::now() < deadline {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            self.samples.push(dt.as_nanos() as f64 / batch as f64);
            self.total_iters += batch;
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let batch = size.batch_len();

        let warm_deadline = Instant::now() + self.warm_up;
        while Instant::now() < warm_deadline {
            let input = setup();
            black_box(routine(input));
        }

        let deadline = Instant::now() + self.measure;
        while Instant::now() < deadline {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let t0 = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let dt = t0.elapsed();
            self.samples.push(dt.as_nanos() as f64 / batch as f64);
            self.total_iters += batch as u64;
        }
    }

    fn report(&mut self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        self.samples.sort_by(|a, b| a.total_cmp(b));
        let median = self.samples[self.samples.len() / 2];
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        println!(
            "{id:<40} median {:>12} mean {:>12} ({} iters)",
            fmt_ns(median),
            fmt_ns(mean),
            self.total_iters
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group runner function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(5),
            measure: Duration::from_millis(20),
        };
        c.bench_function("smoke/iter", |b| b.iter(|| black_box(2u64).pow(10)));
        c.bench_function("smoke/iter_batched", |b| {
            b.iter_batched(
                || vec![3u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(12.0), "12.0 ns");
        assert_eq!(fmt_ns(1_200.0), "1.20 µs");
        assert_eq!(fmt_ns(1_200_000.0), "1.20 ms");
        assert_eq!(fmt_ns(1_200_000_000.0), "1.20 s");
    }
}
