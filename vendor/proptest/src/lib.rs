//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no access to crates.io, so this crate
//! vendors the subset of proptest 1.x's API the workspace's property
//! tests use: the [`Strategy`](strategy::Strategy) trait with `prop_map` /
//! `prop_filter_map` / `prop_flat_map`, range and tuple strategies,
//! [`collection::vec`], [`strategy::Just`], and the [`proptest!`],
//! [`prop_oneof!`], [`prop_assert!`] and [`prop_assert_eq!`] macros.
//!
//! Semantics: each `proptest!` test runs its body against
//! `Config::cases` randomly generated inputs (deterministically seeded
//! per test name, so failures reproduce). There is **no shrinking** — a
//! failing case panics with the generated values via the assert
//! message. Swap in the real proptest when the registry is reachable to
//! get shrinking and persistence.

pub mod strategy;
pub mod test_runner;

/// Strategies over collections (`proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            rng.gen_usize_inclusive(self.lo, self.hi)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test module needs (`proptest::prelude`).
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Picks uniformly among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::union_arm($arm)),+])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `body` for `Config::cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_vec_respect_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        let s = crate::collection::vec(3u32..10, 2..=5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..=5).contains(&v.len()));
            assert!(v.iter().all(|x| (3..10).contains(x)));
        }
    }

    #[test]
    fn filter_map_only_yields_accepted_values() {
        let mut rng = TestRng::deterministic("filter_map");
        let s = (0u32..100).prop_filter_map("odd", |x| (x % 2 == 0).then_some(x));
        for _ in 0..200 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::deterministic("oneof");
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn flat_map_sees_outer_value() {
        let mut rng = TestRng::deterministic("flat_map");
        let s = (1usize..5).prop_flat_map(|n| crate::collection::vec(Just(n), n..=n));
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert_eq!(v.len(), v[0]);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro itself: tuples destructure, asserts fire per case.
        #[test]
        fn macro_generates_cases(x in 0u64..50, v in crate::collection::vec(0u64..50, 0..4)) {
            prop_assert!(x < 50);
            prop_assert_eq!(v.iter().filter(|&&e| e >= 50).count(), 0);
        }
    }
}
