//! Test configuration and the deterministic RNG behind strategies.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-`proptest!` block configuration (`ProptestConfig` in the
/// prelude). Only `cases` is honoured by the stand-in.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of generated inputs per property.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        // Upstream proptest's default case count.
        Config { cases: 256 }
    }
}

/// The RNG handed to [`Strategy::generate`](crate::strategy::Strategy::generate).
///
/// Seeded from the test's name, so every run of a given test sees the
/// same case sequence and failures reproduce without seed persistence.
#[derive(Clone, Debug)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// An RNG deterministically derived from `label` (FNV-1a).
    pub fn deterministic(label: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in label.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(hash),
        }
    }

    /// Uniform `usize` in `[lo, hi]`.
    pub fn gen_usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + (self.rng.next_u64() % span) as usize
    }

    /// The underlying `rand` generator, for range sampling.
    pub fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}
