//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use rand::{Rng, SampleRange};
use std::ops::{Range, RangeInclusive};

/// How many times `prop_filter_map` retries before giving up on a case.
const FILTER_MAP_RETRIES: usize = 10_000;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Transforms generated values, re-generating whenever `f` rejects
    /// one by returning `None`.
    fn prop_filter_map<U, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap {
            inner: self,
            reason,
            f,
        }
    }

    /// Builds a second strategy from each generated value and samples it
    /// (dependent generation).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Clone, Debug)]
pub struct FilterMap<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S, F, U> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<U>,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        for _ in 0..FILTER_MAP_RETRIES {
            if let Some(value) = (self.f)(self.inner.generate(rng)) {
                return value;
            }
        }
        panic!(
            "prop_filter_map({:?}) rejected {FILTER_MAP_RETRIES} candidates in a row",
            self.reason
        );
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let outer = self.inner.generate(rng);
        (self.f)(outer).generate(rng)
    }
}

/// Uniform choice among same-typed strategies (see [`prop_oneof!`]).
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union over the given arms (at least one).
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_usize_inclusive(0, self.arms.len() - 1);
        self.arms[i].generate(rng)
    }
}

/// Boxes one `prop_oneof!` arm (a free function so the macro can name
/// it without turbofish gymnastics).
pub fn union_arm<S>(arm: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(arm)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng_mut().gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng_mut().gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.rng_mut().gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Validated by `SampleRange` being in scope for the range impls.
const _: fn() = || {
    fn assert_sample_range<T, R: SampleRange<T>>() {}
    assert_sample_range::<usize, Range<usize>>();
};
