#!/usr/bin/env python3
"""Validator for the Chrome trace-event exports (`TRACE_*.json`) the
`table_trace` binary writes.

Usage:
    python3 scripts/check_trace.py TRACE_a.json [TRACE_b.json ...]

Checks the minimal contract `about:tracing` / Perfetto rely on: a
top-level `traceEvents` list, non-empty, every event a complete-phase
("ph": "X") record with a string `name`, non-negative numeric
`ts`/`dur`, and integer `pid`/`tid`. Exit status: 0 = all files valid,
1 = contract violation, 2 = usage/IO error.
"""

import json
import sys


def check_file(path):
    """Returns a list of violations for one trace file."""
    with open(path) as f:
        payload = json.load(f)
    errors = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return [f"{path}: no traceEvents list"]
    if not events:
        return [f"{path}: traceEvents is empty"]
    for i, event in enumerate(events):
        where = f"{path}: event {i}"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            errors.append(f"{where}: missing/empty name")
        if event.get("ph") != "X":
            errors.append(f"{where}: ph must be 'X', got {event.get('ph')!r}")
        for key in ("ts", "dur"):
            value = event.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                errors.append(f"{where}: {key} must be a non-negative number")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                errors.append(f"{where}: {key} must be an integer")
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    all_errors = []
    for path in argv[1:]:
        try:
            all_errors.extend(check_file(path))
        except (OSError, json.JSONDecodeError) as e:
            print(f"error: {path}: {e}", file=sys.stderr)
            return 2
    if all_errors:
        for e in all_errors:
            print(f"  {e}")
        print(f"FAIL: {len(all_errors)} trace contract violation(s)")
        return 1
    print(f"trace contract OK ({len(argv) - 1} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
