#!/usr/bin/env python3
"""Bench-trend check: compare smoke-run BENCH_*.json files against the
baselines committed under crates/bench/baselines/ and fail on large
plan-time regressions.

Usage:
    python3 scripts/bench_trend.py [--update] BENCH_a.json [BENCH_b.json ...]
    python3 scripts/bench_trend.py --record

`--record` rebuilds the release table binaries, runs every baselined
configuration (the `--smoke` sweeps plus the default-argument tables)
in a temporary directory, and installs the produced BENCH files as the
new committed baselines in one pass — the one way to re-baseline after
a legitimate optimizer change that shifts the deterministic counters.

For every file, rows are matched against the baseline rows by their
*deterministic identity* — every field that is not a wall-clock
measurement (so topology/n/framework/threads/labels **and** plan
counts, which are deterministic per seed). For each matched row, every
`*_ms`/`*_us` field is compared: if the new value exceeds the baseline
by more than BENCH_TREND_MAX_REGRESSION percent (default 25), the check
fails. `*_pct` fields (overhead and phase time shares — ratios of
wall-clock times) are volatile: excluded from identity and never
compared. Baselines under ten milliseconds (10.0 for `_ms` fields,
10_000.0 for `_us` fields) are skipped — on small cells, scheduler
jitter alone exceeds the threshold even on an idle machine.

Two kinds of regression are enforced:

* **counter regressions** — machine-independent, deterministic work
  metrics (`plans`, NFSM/DFSM node counts, precomputed bytes): any
  *increase* beyond the threshold fails on every machine, so the gate
  enforces something real even when the baselines were recorded on
  different hardware. Decreases (improvements) warn, as a reminder to
  re-baseline.
* **time regressions** — wall-clock comparisons across different
  machines are noise, so when the machine proxy (the meta row's
  `avail_threads`) disagrees between the baseline and the current run,
  time regressions are demoted to warnings; on the same machine class
  they fail. Regenerate baselines on the enforcing machine class with
  --update. When the current run reports *fewer* hardware threads than
  the baseline, time comparisons are skipped outright (not even
  warnings): a narrower machine is slower across the board — for the
  parallel cells by design — so every row would "regress" and the real
  signal (the counter gate) would drown in noise.

Rows that find no baseline counterpart (new cells, changed plan counts
after a legitimate optimizer change) are reported as warnings — rerun
with --update to re-baseline after reviewing them.

Exit status: 0 = no regression, 1 = regression, 2 = usage/IO error.
"""

import json
import os
import shutil
import sys

BASELINE_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "crates",
    "bench",
    "baselines",
)
# Wall-clock measurement fields: excluded from row identity, subject to
# the regression threshold.
TIME_SUFFIXES = ("_ms", "_us")
# Derived-from-time or machine-dependent fields: excluded from identity,
# not checked. The `_pct` suffix covers the observability table's
# overhead and per-phase time shares — ratios of wall-clock times, so
# pure noise across machines and runs. `_per_sec` covers the executor
# table's throughput columns (rows / wall-clock), volatile for the same
# reason; the work they measure is gated via the deterministic
# `rows_out`/`morsels`/`op_batches` counters instead.
VOLATILE = {"speedup", "memory_bytes", "avail_threads", "degraded", "ns_per_unit"}
VOLATILE_SUFFIXES = ("_pct", "_per_sec")
# Deterministic work counters: machine-independent, so enforced on every
# machine. Excluded from identity (else a counter change would just
# unmatch the row and dodge the gate).
COUNTERS = {
    "plans",
    "nfsm_nodes",
    "nfsm_nodes_before",
    "dfsm_nodes",
    "precomputed_bytes",
    "pairs",
    "pairs_considered",
    "unions",
    # Decision telemetry (always-on observability counters): Pareto
    # pruning, oracle probe and enforcer admission counts, plus the
    # recording sink's span count — all schedule-independent.
    "pruned_kept",
    "pruned_dominated",
    "oracle_probes",
    "enforcers_admitted",
    "enforcers_won",
    "spans",
    # Preparation sweep (table_prepare): automaton sizes, the lazy arm's
    # materialization count and probe checksum, and warm cache hits are
    # all index-arithmetic deterministic.
    "nfsm_states",
    "dfsm_states_total",
    "dfsm_states_materialized",
    "probes",
    "prep_interned_hits",
    # Branch-and-bound DP: candidates rejected by the cost upper bound
    # and dominance checks answered without an oracle probe.
    "bound_pruned",
    "dominance_memo_hits",
    # Vectorized executor (table_exec): output rows, morsels scheduled
    # and operator batches processed are all fixed by (plan, data, morsel
    # size) — thread-count- and machine-independent by construction.
    "rows_out",
    "morsels",
    "op_batches",
    # Allocation pressure from the counting global allocator — not
    # wall-clock, so enforced like any other deterministic work counter
    # (modulo ALLOCS_JITTER below).
    "allocs",
}
# The allocation counter is process-global, so a handful of allocations
# of ambient jitter (environment lookups, IO buffering, thread startup)
# leak into every row. Changes within this band — whichever of the
# absolute or relative floor is larger — are ignored outright; beyond
# it, `allocs` is enforced like any deterministic counter.
ALLOCS_JITTER_ABS = 64
ALLOCS_JITTER_REL = 0.02


def is_time_field(key):
    return key.endswith(TIME_SUFFIXES)


def is_volatile_field(key):
    return key in VOLATILE or key.endswith(VOLATILE_SUFFIXES)


def min_baseline(key):
    """Smallest baseline worth comparing: ten milliseconds, in the
    field's own unit (below that, run-to-run jitter swamps the
    threshold)."""
    return 10_000.0 if key.endswith("_us") else 10.0


def strip_volatile(value):
    """Recursively drops time/volatile/counter fields (rows may nest
    objects)."""
    if isinstance(value, dict):
        return {
            k: strip_volatile(v)
            for k, v in value.items()
            if not is_time_field(k) and not is_volatile_field(k) and k not in COUNTERS
        }
    if isinstance(value, list):
        return [strip_volatile(v) for v in value]
    return value


def identity(row):
    """Hashable deterministic identity of a row."""
    return json.dumps(strip_volatile(row), sort_keys=True)


def load_rows(path):
    with open(path) as f:
        payload = json.load(f)
    return payload.get("rows", [])


def machine_proxy(rows):
    """The file's machine fingerprint, if it records one."""
    for row in rows:
        if isinstance(row, dict) and row.get("meta") == 1:
            return row.get("avail_threads")
    return None


def check_file(path, threshold_pct):
    """Returns (regressions, warnings) for one BENCH file."""
    base_path = os.path.join(BASELINE_DIR, os.path.basename(path))
    if not os.path.exists(base_path):
        return [], [f"{path}: no baseline at {base_path} (run with --update)"]
    current = load_rows(path)
    baseline_rows = load_rows(base_path)
    baseline = {identity(r): r for r in baseline_rows}
    regressions, warnings = [], []
    current_threads = machine_proxy(current)
    baseline_threads = machine_proxy(baseline_rows)
    same_machine = current_threads == baseline_threads
    # A machine with fewer hardware threads than the baseline's is
    # slower across the board (the parallel cells by design), so time
    # comparisons carry no signal at all — skip them entirely and rely
    # on the deterministic counter gate.
    skip_times = (
        isinstance(current_threads, (int, float))
        and isinstance(baseline_threads, (int, float))
        and current_threads < baseline_threads
    )
    if skip_times:
        warnings.append(
            f"{path}: current machine has fewer hardware threads than the "
            f"baseline's (avail_threads {current_threads} < "
            f"{baseline_threads}); time comparisons skipped"
        )
    elif not same_machine:
        warnings.append(
            f"{path}: baseline was measured on different hardware "
            f"(avail_threads {baseline_threads} vs "
            f"{current_threads}); time regressions demoted to warnings"
        )
    for row in current:
        base = baseline.get(identity(row))
        if base is None:
            warnings.append(
                f"{path}: no baseline row matches {json.dumps(row, sort_keys=True)[:120]}"
            )
            continue
        label = json.dumps(identity_label(row))[:120]
        # Rows flagged `degraded` measured threads the machine cannot
        # actually run in parallel — their times are scheduling
        # overhead, not work, so only their counters are compared.
        row_degraded = isinstance(row, dict) and row.get("degraded") == 1
        found_times, found_counters = [], []
        compare_rows(row, base, "", threshold_pct, found_times, found_counters)
        for field, old_value, new_value, growth_pct in found_times:
            if skip_times or row_degraded:
                continue
            message = (
                f"{path}: {field} {old_value:.2f} -> {new_value:.2f} "
                f"(+{growth_pct:.0f}% > {threshold_pct:.0f}%) in row {label}"
            )
            (regressions if same_machine else warnings).append(message)
        for field, old_value, new_value, growth_pct in found_counters:
            message = (
                f"{path}: {field} {old_value} -> {new_value} "
                f"({growth_pct:+.0f}%) in row {label}"
            )
            if growth_pct > threshold_pct:
                regressions.append(message + " — deterministic counter regression")
            else:
                warnings.append(message + " — counter changed; re-baseline with --update")
    return regressions, warnings


def compare_rows(new, old, prefix, threshold_pct, out_times, out_counters):
    """Walks matching structures, collecting regressed time fields and
    changed deterministic counters."""
    if isinstance(new, dict) and isinstance(old, dict):
        for key, value in new.items():
            old_value = old.get(key)
            if is_time_field(key):
                if (
                    isinstance(value, (int, float))
                    and isinstance(old_value, (int, float))
                    and old_value >= min_baseline(key)
                ):
                    growth_pct = 100.0 * (value - old_value) / old_value
                    if growth_pct > threshold_pct:
                        out_times.append((prefix + key, old_value, value, growth_pct))
            elif key in COUNTERS:
                if (
                    isinstance(value, (int, float))
                    and isinstance(old_value, (int, float))
                    and value != old_value
                ):
                    if key == "allocs" and abs(value - old_value) <= max(
                        ALLOCS_JITTER_ABS, ALLOCS_JITTER_REL * old_value
                    ):
                        continue
                    growth_pct = 100.0 * (value - old_value) / max(old_value, 1)
                    out_counters.append((prefix + key, old_value, value, growth_pct))
            elif isinstance(value, (dict, list)):
                compare_rows(
                    value, old_value, f"{prefix}{key}.", threshold_pct, out_times, out_counters
                )
    elif isinstance(new, list) and isinstance(old, list):
        for i, (a, b) in enumerate(zip(new, old)):
            compare_rows(a, b, f"{prefix}{i}.", threshold_pct, out_times, out_counters)


def identity_label(row):
    label = strip_volatile(row)
    if isinstance(label, dict):
        label.pop("best_cost", None)
    return label


# Every baselined configuration: (binary, arguments, output file) —
# exactly the invocations CI's "Table-binary smoke" step runs, kept in
# one place so `--record` cannot drift from what CI compares against.
RECORD_BINS = [
    ("table_hypergraph", ["--smoke"], "BENCH_hypergraph.json"),
    ("table_parallel", ["--smoke"], "BENCH_parallel.json"),
    ("table_prepare", ["--smoke"], "BENCH_prepare.json"),
    ("table_trace", ["--smoke"], "BENCH_trace.json"),
    ("table_groupjoin", ["2", "3"], "BENCH_groupjoin.json"),
    ("table_partialsort", ["3", "3"], "BENCH_partialsort.json"),
    ("table_grouping", ["2", "5"], "BENCH_table_grouping.json"),
    ("table_prep_q8", [], "BENCH_table_prep_q8.json"),
    ("table_exec", ["--smoke"], "BENCH_exec.json"),
]


def record():
    """Rebuilds the release binaries, runs every baselined
    configuration, and installs the outputs as the new baselines."""
    import subprocess
    import tempfile

    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    subprocess.run(
        ["cargo", "build", "--release", "-p", "ofw-bench", "--bins"],
        cwd=repo,
        check=True,
    )
    os.makedirs(BASELINE_DIR, exist_ok=True)
    with tempfile.TemporaryDirectory() as tmp:
        for bin_name, bin_args, out in RECORD_BINS:
            exe = os.path.join(repo, "target", "release", bin_name)
            print(f"recording {out}: {bin_name} {' '.join(bin_args)}".rstrip())
            subprocess.run(
                [exe, *bin_args], cwd=tmp, check=True, stdout=subprocess.DEVNULL
            )
            produced = os.path.join(tmp, out)
            if not os.path.exists(produced):
                print(f"error: {bin_name} did not write {out}", file=sys.stderr)
                return 2
            shutil.copyfile(produced, os.path.join(BASELINE_DIR, out))
            print(f"baselined {out}")
    return 0


def main(argv):
    if argv[1:] == ["--record"]:
        return record()
    args = [a for a in argv[1:] if a != "--update"]
    update = "--update" in argv[1:]
    if not args:
        print(__doc__)
        return 2
    if update:
        os.makedirs(BASELINE_DIR, exist_ok=True)
        for path in args:
            dest = os.path.join(BASELINE_DIR, os.path.basename(path))
            shutil.copyfile(path, dest)
            print(f"baselined {path} -> {dest}")
        return 0
    threshold_pct = float(os.environ.get("BENCH_TREND_MAX_REGRESSION", "25"))
    all_regressions, all_warnings = [], []
    for path in args:
        if not os.path.exists(path):
            print(f"error: {path} does not exist", file=sys.stderr)
            return 2
        regressions, warnings = check_file(path, threshold_pct)
        all_regressions.extend(regressions)
        all_warnings.extend(warnings)
    for w in all_warnings:
        print(f"warning: {w}")
    if all_regressions:
        print(f"\nFAIL: {len(all_regressions)} plan-time regression(s) > "
              f"{threshold_pct:.0f}% vs committed baselines:")
        for r in all_regressions:
            print(f"  {r}")
        return 1
    print(f"bench trend OK ({len(args)} file(s), threshold {threshold_pct:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
