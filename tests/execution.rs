//! Physical validation: execute winning plans on synthetic data and
//! check that **every** logical ordering the O(1) framework claims for
//! the output actually holds on the physical tuple stream — the §2
//! stream-satisfaction condition, evaluated on real rows.
//!
//! This closes the loop the property tests leave open: `tests/props.rs`
//! proves the DFSM agrees with the formal derivation rules; this test
//! proves the derivation rules agree with reality.

use ofw::core::{OrderingFramework, PruneConfig};
use ofw::exec::{columns_from_tables, execute_serial};
use ofw::plangen::{execute, synthetic_data, PlanGen};
use ofw::query::extract::ExtractOptions;
use ofw::workload::{
    grouping_query, q8_query, random_query, GroupingQueryConfig, RandomQueryConfig,
};

/// For the winning plan of each random query: every interesting order
/// satisfied by the root's DFSM state must hold physically.
#[test]
fn claimed_orderings_hold_physically_on_random_queries() {
    for n in [2usize, 3, 4, 5] {
        for extra in 0..=1usize {
            if n < 3 && extra > 0 {
                continue;
            }
            for seed in 0..6u64 {
                let (catalog, query) = random_query(&RandomQueryConfig {
                    num_relations: n,
                    extra_edges: extra,
                    seed,
                });
                let ex = ofw::query::extract(&catalog, &query, &ExtractOptions::default());
                let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
                let result = PlanGen::new(&catalog, &query, &ex, &fw).run();

                let data = synthetic_data(&catalog, &query, 8, 4, seed.wrapping_mul(31) + 7);
                let output = execute(&result.arena, result.best, &catalog, &query, &data);

                let root_state = result.arena.node(result.best).state;
                for (ordering, handle) in fw.orders() {
                    if fw.satisfies(root_state, handle) {
                        assert!(
                            output.satisfies_ordering(ordering.attrs()),
                            "n={n} extra={extra} seed={seed}: framework claims {:?} \
                             but the physical stream violates it\nplan:\n{}",
                            ordering,
                            result.arena.render(result.best, &|q| catalog
                                .relation(query.relations[q])
                                .name
                                .clone()),
                        );
                    }
                }
            }
        }
    }
}

/// Same check on every *intermediate* Pareto plan of a small query, not
/// just the winner — order states must be physically right everywhere
/// the DP relies on them.
#[test]
fn claimed_orderings_hold_for_intermediate_plans() {
    for seed in 0..8u64 {
        let (catalog, query) = random_query(&RandomQueryConfig {
            num_relations: 3,
            extra_edges: 0,
            seed,
        });
        let ex = ofw::query::extract(&catalog, &query, &ExtractOptions::default());
        let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
        let result = PlanGen::new(&catalog, &query, &ex, &fw).run();
        let data = synthetic_data(&catalog, &query, 6, 3, seed + 100);

        // Execute *every* allocated subplan (the arena holds them all).
        for id in 0..result.arena.len() as u32 {
            let pid = ofw::plangen::PlanId(id);
            let node = result.arena.node(pid);
            let output = execute(&result.arena, pid, &catalog, &query, &data);
            for (ordering, handle) in fw.orders() {
                // Only orderings over attributes the subplan covers.
                let covered = ordering
                    .attrs()
                    .iter()
                    .all(|&a| node.mask.contains(query.owner(a)));
                if covered && fw.satisfies(node.state, handle) {
                    assert!(
                        output.satisfies_ordering(ordering.attrs()),
                        "seed={seed} plan {pid:?}: claims {ordering:?} physically violated"
                    );
                }
            }
        }
    }
}

/// Grouping workloads: every ordering *and* every grouping the combined
/// framework claims for any subplan must hold on the physical tuple
/// stream — including through hash-group enforcers, grouping-preserving
/// joins and aggregates.
#[test]
fn claimed_groupings_hold_physically() {
    for n in [2usize, 3, 4] {
        for seed in 0..8u64 {
            let (catalog, query) = grouping_query(&GroupingQueryConfig {
                num_relations: n,
                extra_edges: 0,
                seed,
            });
            let ex = ofw::query::extract(&catalog, &query, &ExtractOptions::default());
            let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
            let result = PlanGen::new(&catalog, &query, &ex, &fw).run();
            let data = synthetic_data(&catalog, &query, 7, 3, seed.wrapping_mul(17) + 3);

            for id in 0..result.arena.len() as u32 {
                let pid = ofw::plangen::PlanId(id);
                let node = result.arena.node(pid);
                let output = execute(&result.arena, pid, &catalog, &query, &data);
                let covered = |attrs: &[ofw::catalog::AttrId]| {
                    attrs.iter().all(|&a| node.mask.contains(query.owner(a)))
                };
                for (ordering, handle) in fw.orders() {
                    if covered(ordering.attrs()) && fw.satisfies(node.state, handle) {
                        assert!(
                            output.satisfies_ordering(ordering.attrs()),
                            "n={n} seed={seed} plan {pid:?}: ordering {ordering:?} violated"
                        );
                    }
                }
                for (grouping, handle) in fw.groupings() {
                    if covered(grouping.attrs()) && fw.satisfies_grouping(node.state, handle) {
                        assert!(
                            output.satisfies_grouping(grouping.attrs()),
                            "n={n} seed={seed} plan {pid:?}: grouping {grouping:?} violated\n{}",
                            result.arena.render(pid, &|q| catalog
                                .relation(query.relations[q])
                                .name
                                .clone()),
                        );
                    }
                }
                for (pair, handle) in fw.head_tails() {
                    if covered(pair.attrs()) && fw.satisfies_head_tail(node.state, handle) {
                        assert!(
                            output.satisfies_head_tail(pair.head_attrs(), pair.tail_attrs()),
                            "n={n} seed={seed} plan {pid:?}: head/tail {pair:?} violated\n{}",
                            result.arena.render(pid, &|q| catalog
                                .relation(query.relations[q])
                                .name
                                .clone()),
                        );
                    }
                }
            }
        }
    }
}

/// The legacy tuple-at-a-time executor as a test oracle for the
/// vectorized engine: for every plan the DP allocated — winners and
/// intermediates, over ordering *and* grouping workloads — both
/// executors must produce byte-identical attribute streams (same rows,
/// same physical order, including through the hash operators'
/// deterministic scramble).
#[test]
fn vectorized_executor_matches_the_legacy_oracle_on_every_plan() {
    let mut checked = 0usize;
    for (grouping, n, seeds) in [
        (false, 3usize, 0..8u64),
        (true, 3, 0..6u64),
        (false, 4, 0..4u64),
    ] {
        for seed in seeds {
            let (catalog, query) = if grouping {
                grouping_query(&GroupingQueryConfig {
                    num_relations: n,
                    extra_edges: 0,
                    seed,
                })
            } else {
                random_query(&RandomQueryConfig {
                    num_relations: n,
                    extra_edges: 0,
                    seed,
                })
            };
            let ex = ofw::query::extract(&catalog, &query, &ExtractOptions::default());
            let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
            let result = PlanGen::new(&catalog, &query, &ex, &fw).run();
            let data = synthetic_data(&catalog, &query, 7, 3, seed.wrapping_mul(29) + 13);
            let cols = columns_from_tables(&data);

            for id in 0..result.arena.len() as u32 {
                let pid = ofw::plangen::PlanId(id);
                let legacy = execute(&result.arena, pid, &catalog, &query, &data);
                let (vec_out, _) = execute_serial(&result.arena, pid, &catalog, &query, &cols)
                    .unwrap_or_else(|e| {
                        panic!("grouping={grouping} n={n} seed={seed}: vectorized failed: {e}")
                    });
                let vec_table = vec_out.attr_table();
                assert_eq!(
                    vec_table.attrs, legacy.attrs,
                    "grouping={grouping} n={n} seed={seed} plan {pid:?}: schema diverges"
                );
                assert_eq!(
                    vec_table.rows,
                    legacy.rows,
                    "grouping={grouping} n={n} seed={seed} plan {pid:?}: \
                     vectorized row stream diverges from the legacy oracle\n{}",
                    result
                        .arena
                        .render(pid, &|q| catalog.relation(query.relations[q]).name.clone()),
                );
                checked += 1;
            }
        }
    }
    assert!(
        checked > 100,
        "expected a meaningful plan sample, got {checked}"
    );
}

/// Q8 end to end on synthetic rows: the output is physically grouped by
/// o_year.
#[test]
fn q8_output_is_physically_ordered() {
    let (catalog, query) = q8_query();
    let ex = ofw::query::extract(&catalog, &query, &ExtractOptions::default());
    let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
    let result = PlanGen::new(&catalog, &query, &ex, &fw).run();

    let data = synthetic_data(&catalog, &query, 6, 3, 42);
    let output = execute(&result.arena, result.best, &catalog, &query, &data);
    let o_year = catalog.attr("o_year");
    assert!(
        output.satisfies_ordering(&[o_year]),
        "Q8 output must come out ordered by o_year"
    );
}
