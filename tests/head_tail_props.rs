//! Head/tail pair properties: the third `LogicalProperty` kind must
//! answer `satisfies_head_tail` exactly like the explicit-set ground
//! truth on realistic inputs, and it must be *pay-for-what-you-use* —
//! queries that never register an interesting pair build byte-identical
//! automata to the ordering + grouping pipeline.

use ofw::core::{ExplicitOrderings, LogicalProperty};
use ofw::core::{Fd, FdSet, OrderingFramework, PruneConfig};
use ofw::query::extract::ExtractOptions;
use ofw::workload::{grouping_query, random_query, GroupingQueryConfig, RandomQueryConfig};
use proptest::prelude::*;

/// A structural fingerprint of the whole prepared pipeline: every NFSM
/// node/edge and every DFSM state/transition/contains-column, rendered
/// deterministically. Two frameworks with equal fingerprints are
/// byte-identical for every probe a plan generator can make.
fn automaton_fingerprint(fw: &OrderingFramework) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let nfsm = fw.nfsm();
    for node in 0..nfsm.num_nodes() as u32 {
        let _ = writeln!(
            out,
            "n{node} {:?} eps={:?} edges={:?}",
            nfsm.props.resolve(node),
            nfsm.eps[node as usize],
            nfsm.edges[node as usize],
        );
    }
    let dfsm = fw.dfsm();
    let _ = writeln!(out, "dfsm states={}", dfsm.num_states());
    let _ = writeln!(out, "transitions={:?}", dfsm.transitions);
    let mut columns: Vec<(String, u32)> = dfsm
        .columns
        .iter()
        .map(|(p, &c)| (format!("{p:?}"), c))
        .collect();
    columns.sort();
    let _ = writeln!(out, "columns={columns:?}");
    let mut start: Vec<(String, u32)> = dfsm
        .start
        .iter()
        .map(|(p, &s)| (format!("{p:?}"), s))
        .collect();
    start.sort();
    let _ = writeln!(out, "start={start:?}");
    out
}

/// Queries without both a `group by` and an `order by` never register a
/// pair, so extraction with the head/tail option on or off must yield
/// byte-identical automata — the pre-pair pipeline, untouched.
#[test]
fn pure_queries_build_byte_identical_automata() {
    let on = ExtractOptions::default();
    let off = ExtractOptions {
        head_tail_properties: false,
        ..ExtractOptions::default()
    };
    let mut checked_pure = 0usize;
    let mut checked_pairful = 0usize;
    // Pure ordering workloads (no group-by at all).
    for seed in 0..10u64 {
        let (catalog, query) = random_query(&RandomQueryConfig {
            num_relations: 4,
            extra_edges: 1,
            seed,
        });
        let ex_on = ofw::query::extract(&catalog, &query, &on);
        let ex_off = ofw::query::extract(&catalog, &query, &off);
        assert!(!ex_on.spec.has_head_tails());
        let fw_on = OrderingFramework::prepare(&ex_on.spec, PruneConfig::default()).unwrap();
        let fw_off = OrderingFramework::prepare(&ex_off.spec, PruneConfig::default()).unwrap();
        assert_eq!(
            automaton_fingerprint(&fw_on),
            automaton_fingerprint(&fw_off),
            "seed {seed}: pure ordering query must be untouched"
        );
        checked_pure += 1;
    }
    // Grouping workloads: only those that also order register pairs; a
    // bare group-by stays byte-identical.
    for seed in 0..20u64 {
        let (catalog, query) = grouping_query(&GroupingQueryConfig {
            num_relations: 4,
            extra_edges: 0,
            seed,
        });
        let ex_on = ofw::query::extract(&catalog, &query, &on);
        let ex_off = ofw::query::extract(&catalog, &query, &off);
        if query.order_by.is_empty() {
            let fw_on = OrderingFramework::prepare(&ex_on.spec, PruneConfig::default()).unwrap();
            let fw_off = OrderingFramework::prepare(&ex_off.spec, PruneConfig::default()).unwrap();
            assert_eq!(
                automaton_fingerprint(&fw_on),
                automaton_fingerprint(&fw_off),
                "seed {seed}: pure grouping query must be untouched"
            );
            checked_pure += 1;
        } else if query.order_by.len() >= 2 {
            // Multi-attribute order-by over a group-by: decompositions
            // exist, so pairs must actually have been registered.
            assert!(
                ex_on.spec.has_head_tails(),
                "seed {seed}: GROUP BY … ORDER BY must register pairs"
            );
            checked_pairful += 1;
        }
    }
    assert!(checked_pure >= 10, "the pure guard needs pure samples");
    assert!(checked_pairful >= 1, "want at least one pair-ful sample");
}

/// For random grouping workloads (the specs real queries extract),
/// every `satisfies_head_tail` probe after every operator sequence must
/// agree with the explicit-set ground truth — from sorted and from
/// hash-grouped start states.
mod workload_agreement {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        #[test]
        fn head_tail_satisfaction_matches_explicit_oracle(
            seed in 0..40u64,
            ops in proptest::collection::vec(0usize..4, 0..=4),
        ) {
            let (catalog, query) = grouping_query(&GroupingQueryConfig {
                num_relations: 3,
                extra_edges: 0,
                seed,
            });
            let ex = ofw::query::extract(&catalog, &query, &ExtractOptions::default());
            let _ = catalog;
            if ex.spec.has_head_tails() {
                let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
                let fd_sets: Vec<FdSet> = ex.spec.fd_sets().to_vec();
                for p in ex.spec.produced() {
                    let handle = fw.handle_property(p).expect("produced is interesting");
                    let mut state = fw.produce(handle);
                    let mut truth = match p {
                        LogicalProperty::Ordering(o) => ExplicitOrderings::from_physical(o),
                        LogicalProperty::Grouping(g) => ExplicitOrderings::from_grouping(g),
                        LogicalProperty::HeadTail(h) => ExplicitOrderings::from_head_tail(h),
                    };
                    for &op in &ops {
                        if op >= fd_sets.len() {
                            continue;
                        }
                        state = fw.infer(state, ofw::core::FdSetId(op as u32));
                        truth.infer(&fd_sets[op]);
                    }
                    for (pair, ph) in fw.head_tails() {
                        prop_assert_eq!(
                            fw.satisfies_head_tail(state, ph),
                            truth.contains_head_tail(pair),
                            "seed {} pair {:?} from {:?} after {:?}",
                            seed, pair, p, &ops
                        );
                    }
                    // The established kinds must agree too — pairs may
                    // not perturb ordering or grouping answers.
                    for (o, oh) in fw.orders() {
                        prop_assert_eq!(fw.satisfies(state, oh), truth.contains(o));
                    }
                    for (g, gh) in fw.groupings() {
                        prop_assert_eq!(
                            fw.satisfies_grouping(state, gh),
                            truth.contains_grouping(g)
                        );
                    }
                }
            }
        }
    }
}

/// Hand-rolled pair specs with adversarial FD mixes: agreement holds
/// from pair-shaped start states too (what a partial-sort output is).
mod spec_agreement {
    use super::*;
    use ofw::catalog::AttrId;
    use ofw::core::{Grouping, HeadTail, InputSpec, Ordering};

    fn arb_attr() -> impl Strategy<Value = AttrId> {
        (0..4u32).prop_map(AttrId)
    }

    fn arb_head() -> impl Strategy<Value = Grouping> {
        proptest::collection::vec(arb_attr(), 1..=2).prop_map(Grouping::new)
    }

    fn arb_fd() -> impl Strategy<Value = Fd> {
        prop_oneof![
            (arb_attr(), arb_attr()).prop_filter_map("trivial", |(a, b)| (a != b)
                .then(|| Fd::functional(&[a], b))),
            (arb_attr(), arb_attr())
                .prop_filter_map("trivial", |(a, b)| (a != b).then(|| Fd::equation(a, b))),
            arb_attr().prop_map(Fd::constant),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]

        #[test]
        fn head_tail_satisfaction_matches_explicit_oracle(
            heads in proptest::collection::vec(arb_head(), 1..=2),
            fds in proptest::collection::vec(arb_fd(), 1..=3),
            ops in proptest::collection::vec(0usize..3, 0..=3),
        ) {
            let attrs: Vec<AttrId> = (0..4).map(AttrId).collect();
            let mut spec = InputSpec::new();
            // Produced: one ordering over everything, one grouping per
            // sampled head; tested: pairs (head, continuation).
            spec.add_produced(Ordering::new(attrs.clone()));
            for head in &heads {
                spec.add_produced(head.clone());
                let tail: Vec<AttrId> = attrs
                    .iter()
                    .copied()
                    .filter(|a| !head.contains_attr(*a))
                    .take(2)
                    .collect();
                if !tail.is_empty() {
                    spec.add_tested(HeadTail::new(head.clone(), Ordering::new(tail)));
                }
            }
            let set_ids: Vec<_> = fds
                .iter()
                .map(|fd| spec.add_fd_set(vec![fd.clone()]))
                .collect();
            if spec.interesting_head_tails().next().is_some() {
                let fw = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();
                for p in spec.produced() {
                    let handle = fw.handle_property(p).expect("produced is interesting");
                    let mut state = fw.produce(handle);
                    let mut truth = match p {
                        LogicalProperty::Ordering(o) => ExplicitOrderings::from_physical(o),
                        LogicalProperty::Grouping(g) => ExplicitOrderings::from_grouping(g),
                        LogicalProperty::HeadTail(h) => ExplicitOrderings::from_head_tail(h),
                    };
                    for &op in &ops {
                        if op >= set_ids.len() {
                            continue;
                        }
                        state = fw.infer(state, set_ids[op]);
                        truth.infer(&FdSet::new(vec![fds[op].clone()]));
                    }
                    for (pair, ph) in fw.head_tails() {
                        prop_assert_eq!(
                            fw.satisfies_head_tail(state, ph),
                            truth.contains_head_tail(pair),
                            "pair {:?} from {:?} after {:?} under {:?}",
                            pair, p, &ops, &fds
                        );
                    }
                }
            }
        }
    }
}
