//! Root smoke test: the README / `examples/quickstart.rs` path, run
//! against the `ofw` facade exactly as a downstream user would, with the
//! paper's §5 running example asserted against Figs. 9–10. Also touches
//! every facade module once, so a broken re-export fails here rather
//! than in a downstream crate.

use ofw::catalog::AttrId;
use ofw::core::{Fd, InputSpec, Ordering, OrderingFramework, PruneConfig, State};

fn o(ids: &[AttrId]) -> Ordering {
    Ordering::new(ids.to_vec())
}

/// The quickstart, end to end: build the §5 input spec, prepare the
/// framework, and check `satisfies` (Fig. 9) and `infer` (Fig. 10)
/// through the O(1) ADT.
#[test]
fn quickstart_running_example_matches_figs_9_and_10() {
    let [a, b, c, d] = [AttrId(0), AttrId(1), AttrId(2), AttrId(3)];

    let mut spec = InputSpec::new();
    spec.add_produced(o(&[b]));
    spec.add_produced(o(&[a, b]));
    spec.add_tested(o(&[a, b, c]));
    let f_bc = spec.add_fd_set(vec![Fd::functional(&[b], c)]);
    let f_bd = spec.add_fd_set(vec![Fd::functional(&[b], d)]);

    let fw = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();

    // Fig. 8: three reachable states plus the explicit empty state.
    assert_eq!(fw.stats().dfsm_states, 4);
    // {b→d} can never matter — pruned in step 2(b).
    assert_eq!(fw.stats().pruned_fds, 1);

    let h = |ord: &Ordering| fw.handle(ord).unwrap();
    let (h_a, h_b, h_ab, h_abc) = (h(&o(&[a])), h(&o(&[b])), h(&o(&[a, b])), h(&o(&[a, b, c])));

    // Fig. 9, row by row: state 1 = sort by (b), state 2 = sort by
    // (a,b), state 3 = state 2 after {b→c}.
    let s1 = fw.produce(h_b);
    let s2 = fw.produce(h_ab);
    let s3 = fw.infer(s2, f_bc);
    let row = |s: State| {
        [
            fw.satisfies(s, h_a),
            fw.satisfies(s, h_b),
            fw.satisfies(s, h_ab),
            fw.satisfies(s, h_abc),
        ]
    };
    assert_eq!(row(s1), [false, true, false, false], "Fig. 9 state 1");
    assert_eq!(row(s2), [true, false, true, false], "Fig. 9 state 2");
    assert_eq!(row(s3), [true, false, true, true], "Fig. 9 state 3");

    // Fig. 10, the transition table: {b→c} advances state 2 to state 3
    // and loops everywhere else; the pruned {b→d} is the identity.
    assert_eq!(fw.infer(s1, f_bc), s1);
    assert_eq!(fw.infer(s3, f_bc), s3);
    for s in [s1, s2, s3] {
        assert_eq!(fw.infer(s, f_bd), s, "pruned FD must be a no-op");
    }

    // §5.6 walkthrough: sort by (a,b), apply {b→c}, and (a,b,c) holds.
    let s = fw.produce(h_ab);
    assert!(fw.satisfies(s, h_ab) && !fw.satisfies(s, h_abc));
    let s = fw.infer(s, f_bc);
    assert!(fw.satisfies(s, h_abc));
}

/// The combined-framework quickstart: groupings ride on the same
/// 4-byte state and the same O(1) probes.
#[test]
fn grouping_quickstart() {
    use ofw::core::Grouping;
    let [a, b, c] = [AttrId(0), AttrId(1), AttrId(2)];
    let mut spec = InputSpec::new();
    spec.add_produced(o(&[a, b]));
    spec.add_produced(Grouping::new(vec![a, b]));
    spec.add_tested(Grouping::new(vec![a, b, c]));
    let f_bc = spec.add_fd_set(vec![Fd::functional(&[b], c)]);
    let fw = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();

    let g_ab = fw.handle_grouping(&Grouping::new(vec![a, b])).unwrap();
    let g_abc = fw.handle_grouping(&Grouping::new(vec![a, b, c])).unwrap();
    // Sorted ⇒ grouped; hash-grouped ⇒ grouped but unsorted.
    let sorted = fw.produce(fw.handle(&o(&[a, b])).unwrap());
    assert!(fw.satisfies_grouping(sorted, g_ab));
    let grouped = fw.produce_grouping(g_ab);
    assert!(fw.satisfies_grouping(grouped, g_ab));
    assert!(!fw.satisfies(grouped, fw.handle(&o(&[a, b])).unwrap()));
    // FDs extend groupings by set insertion, in O(1).
    assert!(fw.satisfies_grouping(fw.infer(grouped, f_bc), g_abc));
}

/// Every facade module resolves and its headline type is usable: a
/// stale `pub use` in `src/lib.rs` fails this test at compile time.
#[test]
fn facade_reexports_are_wired() {
    // common
    let mut bits = ofw::common::BitSet::new(8);
    bits.insert(3);
    assert!(bits.contains(3));

    // catalog + query
    let mut catalog = ofw::catalog::Catalog::new();
    catalog.add_relation("r", 100.0, &["x", "y"]);
    catalog.add_relation("s", 50.0, &["x"]);
    let query = ofw::query::QueryBuilder::new(&catalog)
        .relation("r")
        .relation("s")
        .join("r.x", "s.x", 0.1)
        .build();
    let ex = ofw::query::extract(
        &catalog,
        &query,
        &ofw::query::extract::ExtractOptions::default(),
    );

    // core + simmen + plangen, over the same extracted spec
    let fw =
        ofw::core::OrderingFramework::prepare(&ex.spec, ofw::core::PruneConfig::default()).unwrap();
    let ours = ofw::plangen::PlanGen::new(&catalog, &query, &ex, &fw).run();
    let simmen = ofw::simmen::SimmenFramework::prepare(&ex.spec);
    let baseline = ofw::plangen::PlanGen::new(&catalog, &query, &ex, &simmen).run();
    assert!(ours.cost.is_finite() && ours.cost > 0.0);
    assert!((ours.cost - baseline.cost).abs() / ours.cost < 1e-9);

    // workload
    let (cat8, q8) = ofw::workload::q8_query();
    assert_eq!(q8.relations.len(), 8);
    assert!(cat8.num_attrs() > 0);
}
