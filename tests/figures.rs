//! E1–E4: exact reproductions of the paper's worked figures, asserted at
//! the public-API level.

use ofw::catalog::{AttrId, Catalog};
use ofw::core::{Fd, InputSpec, Ordering, OrderingFramework, PruneConfig};
use ofw::query::extract::ExtractOptions;
use ofw::query::QueryBuilder;

const A: AttrId = AttrId(0);
const B: AttrId = AttrId(1);
const C: AttrId = AttrId(2);
const D: AttrId = AttrId(3);

fn o(ids: &[AttrId]) -> Ordering {
    Ordering::new(ids.to_vec())
}

/// Figs. 1–2: interesting order (a,b,c) with FD {b→d}. The NFSM adds
/// the d-orderings (a,b,d), (a,b,d,c), (a,b,c,d); the DFSM collapses
/// them into a single follow-up state.
#[test]
fn fig1_2_nfsm_and_dfsm_for_abc_with_b_to_d() {
    let mut spec = InputSpec::new();
    spec.add_produced(o(&[A, B, C]));
    let f_bd = spec.add_fd_set(vec![Fd::functional(&[B], D)]);

    // Without pruning: the NFSM of Fig. 1.
    let fw = OrderingFramework::prepare(&spec, PruneConfig::none()).unwrap();
    for node in [
        o(&[A]),
        o(&[A, B]),
        o(&[A, B, C]),
        o(&[A, B, D]),
        o(&[A, B, D, C]),
        o(&[A, B, C, D]),
    ] {
        assert!(
            fw.nfsm().node_of(&node).is_some(),
            "Fig. 1 node {node:?} missing"
        );
    }
    // The DFSM of Fig. 2: start + {a,ab,abc} + the merged d-state.
    assert_eq!(
        fw.stats().dfsm_states,
        3,
        "empty + the two states of Fig. 2"
    );
    let s1 = fw.produce(fw.handle(&o(&[A, B, C])).unwrap());
    let s2 = fw.infer(s1, f_bd);
    assert_ne!(s1, s2);
    assert_eq!(fw.infer(s2, f_bd), s2, "d-state is a fixpoint");
    // Both states satisfy (a),(a,b),(a,b,c) — and with pruning the FD
    // is dropped entirely because d occurs in no interesting order.
    let fw_pruned = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();
    assert_eq!(fw_pruned.stats().pruned_fds, 1);
}

/// Figs. 4–7: the running example's NFSM after each §5.3 step, and
/// Figs. 8–10: the DFSM with its precomputed tables.
#[test]
fn fig4_to_10_running_example() {
    let mut spec = InputSpec::new();
    spec.add_produced(o(&[B]));
    spec.add_produced(o(&[A, B]));
    spec.add_tested(o(&[A, B, C]));
    let f_bc = spec.add_fd_set(vec![Fd::functional(&[B], C)]);
    let f_bd = spec.add_fd_set(vec![Fd::functional(&[B], D)]);

    let fw = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();

    // Fig. 7 (final NFSM): exactly (a), (b), (a,b), (a,b,c) + ().
    assert_eq!(fw.stats().nfsm_nodes, 5);
    for node in [o(&[A]), o(&[B]), o(&[A, B]), o(&[A, B, C])] {
        assert!(fw.nfsm().node_of(&node).is_some());
    }
    assert!(
        fw.nfsm().node_of(&o(&[B, C])).is_none(),
        "(b,c) pruned (Fig. 6)"
    );
    assert!(
        fw.nfsm().node_of(&o(&[A, B, D])).is_none(),
        "{{b→d}} pruned"
    );

    // Fig. 8: 3 DFSM states (+ our explicit empty state).
    assert_eq!(fw.stats().dfsm_states, 4);

    // Fig. 9: the contains matrix.
    let h = |ord: &Ordering| fw.handle(ord).unwrap();
    let (h_a, h_ab, h_abc, h_b) = (h(&o(&[A])), h(&o(&[A, B])), h(&o(&[A, B, C])), h(&o(&[B])));
    let s1 = fw.produce(h_b); // node 1 = {(b)}
    let s2 = fw.produce(h_ab); // node 2 = {(a),(a,b)}
    let s3 = fw.infer(s2, f_bc); // node 3 = {(a),(a,b),(a,b,c)}
    let row = |s| {
        [
            fw.satisfies(s, h_a),
            fw.satisfies(s, h_ab),
            fw.satisfies(s, h_abc),
            fw.satisfies(s, h_b),
        ]
    };
    assert_eq!(row(s1), [false, false, false, true], "Fig. 9 row 1");
    assert_eq!(row(s2), [true, true, false, false], "Fig. 9 row 2");
    assert_eq!(row(s3), [true, true, true, false], "Fig. 9 row 3");

    // Fig. 10: the transition table.
    assert_eq!(fw.infer(s1, f_bc), s1, "row 1: {{b→c}} loops");
    assert_eq!(fw.infer(s2, f_bc), s3, "row 2: {{b→c}} advances to 3");
    assert_eq!(fw.infer(s3, f_bc), s3, "row 3: fixpoint");
    for s in [s1, s2, s3] {
        assert_eq!(fw.infer(s, f_bd), s, "pruned FD is the identity");
    }
}

/// Figs. 11–12: the simple persons/jobs query of §6.1. The equation
/// `persons.jobid = jobs.id` makes id- and jobid-orderings mutually
/// derivable (the DFSM merges the permutations, Fig. 12), and the
/// tested-only (salary) state stays unreachable.
#[test]
fn fig11_12_simple_query() {
    let mut catalog = Catalog::new();
    catalog.add_relation("persons", 10_000.0, &["id", "name", "jobid"]);
    catalog.add_relation("jobs", 100.0, &["id", "salary"]);
    let jobs = catalog.relation_id("jobs").unwrap();
    let jid = catalog.attr("jobs.id");
    catalog.add_index(jobs, vec![jid], true);
    let query = QueryBuilder::new(&catalog)
        .relation("persons")
        .relation("jobs")
        .join("persons.jobid", "jobs.id", 0.01)
        .filter("jobs.salary", 0.3)
        .order_by(&["jobs.id", "persons.name"])
        .build();
    let ex = ofw::query::extract(
        &catalog,
        &query,
        &ExtractOptions {
            tested_selection_orders: true,
            ..ExtractOptions::default()
        },
    );
    let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();

    let pjobid = catalog.attr("persons.jobid");
    let pname = catalog.attr("persons.name");
    let salary = catalog.attr("jobs.salary");

    // (salary) is interesting (testable) but not producible: no operator
    // generates it, so no artificial start edge exists ("the state for
    // salary cannot be reached").
    let h_salary = fw.handle(&o(&[salary])).unwrap();
    assert!(!ofw::core::OrderingFramework::is_producible(&fw, h_salary));

    // Fig. 11's id=jobid edge: a stream ordered by (jobs.id), after the
    // join applies id = jobid, satisfies (persons.jobid) as well.
    let h_id = fw.handle(&o(&[jid])).unwrap();
    let h_jobid = fw.handle(&o(&[pjobid])).unwrap();
    let s = fw.produce(h_id);
    assert!(fw.satisfies(s, h_id));
    assert!(!fw.satisfies(s, h_jobid), "before the equation");
    let s = fw.infer(s, ex.join_fd[0]);
    assert!(
        fw.satisfies(s, h_jobid),
        "after the equation (Fig. 11 edge)"
    );

    // Fig. 12's big state: sorted by (id,name) + equation satisfies the
    // order-by and all single-attribute join orders at once.
    let h_id_name = fw.handle(&o(&[jid, pname])).unwrap();
    let s = fw.produce(h_id_name);
    let s = fw.infer(s, ex.join_fd[0]);
    for h in [h_id, h_jobid, h_id_name] {
        assert!(fw.satisfies(s, h), "Fig. 12 merged state");
    }
    assert!(!fw.satisfies(s, h_salary));
}

/// §2's introductory example as ground truth: sorted on (a,b), then a
/// selection x = const makes the stream satisfy the six additional
/// logical orderings the paper lists.
#[test]
fn section2_constant_example_via_dfsm() {
    let x = D;
    let mut spec = InputSpec::new();
    spec.add_produced(o(&[A, B]));
    // Make the x-interleavings interesting so they are representable.
    spec.add_tested(o(&[x, A, B]));
    spec.add_tested(o(&[A, x, B]));
    spec.add_tested(o(&[A, B, x]));
    let f_x = spec.add_fd_set(vec![Fd::constant(x)]);
    let fw = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();

    let s = fw.produce(fw.handle(&o(&[A, B])).unwrap());
    let s = fw.infer(s, f_x);
    for probe in [
        o(&[x, A, B]),
        o(&[A, x, B]),
        o(&[A, B, x]),
        o(&[x, A]),
        o(&[A, x]),
        o(&[x]),
        o(&[A, B]),
        o(&[A]),
    ] {
        let h = fw
            .handle(&probe)
            .unwrap_or_else(|| panic!("{probe:?} not interesting"));
        assert!(fw.satisfies(s, h), "{probe:?} must hold");
    }
}
