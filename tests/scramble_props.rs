//! Property tests for the hash operators' *scrambled-but-deterministic*
//! output order at morsel scale.
//!
//! The legacy tuple executor deliberately emits hash-aggregate groups
//! and hash-group blocks in a scrambled deterministic order (reverse +
//! even/odd interleave of first-seen order), so no ordering claim can
//! survive a hash operator by accident. The vectorized engine must
//! reproduce that order *exactly* — even though it aggregates per
//! morsel and merges — and must keep it byte-stable across repeated
//! runs and across 1/2/8 pool threads, for random row counts, group
//! counts, morsel sizes and seeds.

use ofw::catalog::Catalog;
use ofw::common::SerialExecutor;
use ofw::exec::{execute_plan, ExecOptions};
use ofw::obs::Trace;
use ofw::parallel::ThreadPool;
use ofw::plangen::plan::AggMark;
use ofw::plangen::{PlanArena, PlanId, PlanNode, PlanOp};
use ofw::query::{AggCall, AggFunc, Query};
use ofw::workload::{generate_columns, DataConfig};
use proptest::prelude::*;

/// One single-relation grouping fixture: catalog, query (`group by g`,
/// `sum(v)`, `count(*)`), and base columns with ~`groups` distinct keys.
fn fixture(rows: usize, groups: i64, seed: u64) -> (Catalog, Query, Vec<Vec<Vec<i64>>>) {
    let mut catalog = Catalog::new();
    let rel = catalog.add_relation("r0", rows as f64, &["g", "v"]);
    let g = catalog.attr("r0.g");
    catalog.set_distinct_values(g, groups as f64);
    let mut query = Query::new();
    query.add_relation(&catalog, rel);
    query.group_by = vec![g];
    query.aggregates = vec![
        AggCall {
            func: AggFunc::Sum,
            input: Some(catalog.attr("r0.v")),
        },
        AggCall {
            func: AggFunc::Count,
            input: None,
        },
    ];
    let data = generate_columns(
        &catalog,
        &query,
        &DataConfig {
            scale: 1.0,
            min_rows: rows,
            max_rows: rows,
            domain_cap: None,
            seed,
        },
    );
    (catalog, query, data)
}

/// Single-input plan: `Scan(r0)` under the given operator.
fn plan_over_scan(query: &Query, op: impl FnOnce(PlanId) -> PlanOp) -> (PlanArena<()>, PlanId) {
    let mut arena: PlanArena<()> = PlanArena::new();
    let mask = query.relation_set(0);
    let node = |op: PlanOp, mask| PlanNode {
        op,
        mask,
        cost: 0.0,
        card: 0.0,
        state: (),
        agg: AggMark::NONE,
        applied_fds: Default::default(),
    };
    let scan = arena.push(node(PlanOp::Scan { qrel: 0 }, mask.clone()));
    let root = arena.push(node(op(scan), mask));
    (arena, root)
}

/// The legacy scramble, reimplemented independently of the engine:
/// reverse, then even positions, then odd positions.
fn legacy_scramble<T: Clone>(items: &[T]) -> Vec<T> {
    let rev: Vec<T> = items.iter().rev().cloned().collect();
    let mut out: Vec<T> = rev.iter().step_by(2).cloned().collect();
    out.extend(rev.iter().skip(1).step_by(2).cloned());
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Hash aggregation: group order equals the legacy scramble of the
    /// global first-seen order, and sums/counts are exact — identical
    /// across repeated runs, morsel-parallel at 1/2/8 threads.
    #[test]
    fn hash_agg_scramble_is_deterministic_at_morsel_scale(
        rows in 1_500usize..5_000,
        groups in 2i64..40,
        morsel in 64usize..700,
        seed in 0u64..10_000,
    ) {
        let (catalog, query, data) = fixture(rows, groups, seed);
        let g_col = &data[0][0];
        let v_col = &data[0][1];
        let (arena, root) = plan_over_scan(&query, |scan| PlanOp::HashAgg {
            input: scan,
            key: query.group_by.clone(),
            partial: false,
        });
        let opts = ExecOptions { morsel_rows: morsel };
        let serial = execute_plan(
            &arena, root, &catalog, &query, &data,
            &SerialExecutor, &opts, &Trace::disabled(),
        ).unwrap();
        prop_assert!(serial.1.morsels > 2, "fixture must span several morsels");

        // Expected: first-seen group order, scrambled the legacy way,
        // with exact per-group sum and count.
        let mut order: Vec<i64> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for &k in g_col {
            if seen.insert(k) {
                order.push(k);
            }
        }
        let expected_keys = legacy_scramble(&order);
        let mut sums = std::collections::HashMap::new();
        let mut counts = std::collections::HashMap::new();
        for (&k, &v) in g_col.iter().zip(v_col) {
            *sums.entry(k).or_insert(0i64) += v;
            *counts.entry(k).or_insert(0i64) += 1;
        }
        let g = catalog.attr("r0.g");
        let out_keys = serial.0.col(ofw::exec::ColRef::Attr(g)).unwrap();
        prop_assert_eq!(out_keys, &expected_keys[..], "group order must be the legacy scramble");
        let out_sums = serial.0.col(ofw::exec::ColRef::Acc(0)).unwrap();
        let out_counts = serial.0.col(ofw::exec::ColRef::Acc(1)).unwrap();
        for (i, &k) in expected_keys.iter().enumerate() {
            prop_assert_eq!(out_sums[i], sums[&k], "sum(v) wrong for group {}", k);
            prop_assert_eq!(out_counts[i], counts[&k], "count(*) wrong for group {}", k);
        }

        // Stability: repeated serial run, then 2 and 8 pool threads.
        let again = execute_plan(
            &arena, root, &catalog, &query, &data,
            &SerialExecutor, &opts, &Trace::disabled(),
        ).unwrap();
        prop_assert_eq!(&again.0, &serial.0);
        prop_assert_eq!(&again.1, &serial.1);
        for threads in [2usize, 8] {
            let pool = ThreadPool::new(threads);
            let pooled = execute_plan(
                &arena, root, &catalog, &query, &data,
                &pool, &opts, &Trace::disabled(),
            ).unwrap();
            prop_assert_eq!(&pooled.0, &serial.0, "output differs at {} threads", threads);
            prop_assert_eq!(&pooled.1, &serial.1, "counters differ at {} threads", threads);
        }
    }

    /// Hash grouping: blocks are the legacy scramble of first-seen key
    /// order, rows keep their relative order inside each block, and the
    /// whole stream is byte-stable across runs and thread counts.
    #[test]
    fn hash_group_scramble_is_deterministic_at_morsel_scale(
        rows in 1_500usize..5_000,
        groups in 2i64..40,
        morsel in 64usize..700,
        seed in 10_000u64..20_000,
    ) {
        let (catalog, query, data) = fixture(rows, groups, seed);
        let g_col = &data[0][0];
        let v_col = &data[0][1];
        let (arena, root) = plan_over_scan(&query, |scan| PlanOp::HashGroup {
            input: scan,
            key: query.group_by.clone(),
        });
        let opts = ExecOptions { morsel_rows: morsel };
        let serial = execute_plan(
            &arena, root, &catalog, &query, &data,
            &SerialExecutor, &opts, &Trace::disabled(),
        ).unwrap();

        // Expected stream: per-key row lists in first-seen key order,
        // block order scrambled, rows inside a block in input order.
        let mut order: Vec<i64> = Vec::new();
        let mut blocks: std::collections::HashMap<i64, Vec<(i64, i64)>> =
            std::collections::HashMap::new();
        for (&k, &v) in g_col.iter().zip(v_col) {
            blocks.entry(k).or_insert_with(|| {
                order.push(k);
                Vec::new()
            }).push((k, v));
        }
        let expected: Vec<(i64, i64)> = legacy_scramble(&order)
            .into_iter()
            .flat_map(|k| blocks[&k].clone())
            .collect();
        let g = catalog.attr("r0.g");
        let v = catalog.attr("r0.v");
        let out_g = serial.0.col(ofw::exec::ColRef::Attr(g)).unwrap();
        let out_v = serial.0.col(ofw::exec::ColRef::Attr(v)).unwrap();
        let got: Vec<(i64, i64)> = out_g.iter().copied().zip(out_v.iter().copied()).collect();
        prop_assert_eq!(got, expected, "hash-group stream must be the scrambled block order");
        prop_assert!(serial.0.satisfies_grouping(&[g]));

        for threads in [2usize, 8] {
            let pool = ThreadPool::new(threads);
            let pooled = execute_plan(
                &arena, root, &catalog, &query, &data,
                &pool, &opts, &Trace::disabled(),
            ).unwrap();
            prop_assert_eq!(&pooled.0, &serial.0, "output differs at {} threads", threads);
            prop_assert_eq!(&pooled.1, &serial.1, "counters differ at {} threads", threads);
        }
    }
}
