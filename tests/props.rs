//! Property-based tests on the core invariants.
//!
//! The crown jewel: for *random* specs (interesting orders + FD sets)
//! and *random* operator sequences, the O(1) DFSM framework must answer
//! `contains` exactly like the naive explicit-set implementation of §2
//! (which applies the derivation rules directly, with no FSM, no
//! determinization and no §5.7 heuristics). This exercises the whole
//! pipeline — derivation, pruning, powerset construction, precomputed
//! tables — against an independently implemented semantics.

use ofw::catalog::AttrId;
use ofw::core::{
    ExplicitOrderings, Fd, FdSet, InputSpec, Ordering, OrderingFramework, PruneConfig,
};
use proptest::prelude::*;

const NUM_ATTRS: u32 = 5;

fn arb_attr() -> impl Strategy<Value = AttrId> {
    (0..NUM_ATTRS).prop_map(AttrId)
}

/// A duplicate-free ordering of length 1..=3.
fn arb_ordering() -> impl Strategy<Value = Ordering> {
    proptest::collection::vec(arb_attr(), 1..=3).prop_filter_map("duplicate attrs", |attrs| {
        let mut seen = std::collections::HashSet::new();
        if attrs.iter().all(|a| seen.insert(*a)) {
            Some(Ordering::new(attrs))
        } else {
            None
        }
    })
}

fn arb_fd() -> impl Strategy<Value = Fd> {
    prop_oneof![
        (arb_attr(), arb_attr())
            .prop_filter_map("trivial", |(a, b)| (a != b).then(|| Fd::equation(a, b))),
        (proptest::collection::vec(arb_attr(), 1..=2), arb_attr())
            .prop_filter_map("trivial", |(lhs, rhs)| (!lhs.contains(&rhs))
                .then(|| Fd::functional(&lhs, rhs))),
        arb_attr().prop_map(Fd::constant),
    ]
}

#[derive(Debug, Clone)]
struct Scenario {
    produced: Vec<Ordering>,
    tested: Vec<Ordering>,
    fd_sets: Vec<Vec<Fd>>,
    /// Start order (index into produced) and FD-set application sequence.
    start: usize,
    ops: Vec<usize>,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        proptest::collection::vec(arb_ordering(), 1..=3),
        proptest::collection::vec(arb_ordering(), 0..=2),
        proptest::collection::vec(proptest::collection::vec(arb_fd(), 1..=2), 1..=3),
    )
        .prop_flat_map(|(produced, tested, fd_sets)| {
            let np = produced.len();
            let nf = fd_sets.len();
            (
                Just(produced),
                Just(tested),
                Just(fd_sets),
                0..np,
                proptest::collection::vec(0..nf, 0..=4),
            )
                .prop_map(|(produced, tested, fd_sets, start, ops)| Scenario {
                    produced,
                    tested,
                    fd_sets,
                    start,
                    ops,
                })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The DFSM framework agrees with the explicit-set ground truth on
    /// every interesting order, after every operator sequence.
    #[test]
    fn dfsm_matches_explicit_oracle(sc in arb_scenario()) {
        let mut spec = InputSpec::new();
        for o in &sc.produced {
            spec.add_produced(o.clone());
        }
        for o in &sc.tested {
            spec.add_tested(o.clone());
        }
        let set_ids: Vec<_> = sc.fd_sets.iter().map(|fds| spec.add_fd_set(fds.clone())).collect();

        let fw = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();

        // Walk both representations in lockstep.
        let start = &sc.produced[sc.start];
        let mut state = fw.produce(fw.handle(start).expect("produced orders are interesting"));
        let mut truth = ExplicitOrderings::from_physical(start);
        for &op in &sc.ops {
            state = fw.infer(state, set_ids[op]);
            truth.infer(&FdSet::new(sc.fd_sets[op].clone()));
        }

        // Every interesting order (including prefixes) must agree.
        for (ordering, handle) in fw.orders() {
            let got = fw.satisfies(state, handle);
            let want = truth.contains(ordering);
            prop_assert_eq!(
                got, want,
                "order {:?} after start {:?} ops {:?}", ordering, start, sc.ops
            );
        }
    }

    /// Pruning is behaviour-preserving: the fully pruned DFSM and the
    /// completely un-pruned one answer identically.
    #[test]
    fn pruning_preserves_behaviour(sc in arb_scenario()) {
        let mut spec = InputSpec::new();
        for o in &sc.produced {
            spec.add_produced(o.clone());
        }
        for o in &sc.tested {
            spec.add_tested(o.clone());
        }
        let set_ids: Vec<_> = sc.fd_sets.iter().map(|fds| spec.add_fd_set(fds.clone())).collect();

        let pruned = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();
        let raw = OrderingFramework::prepare(&spec, PruneConfig::none()).unwrap();

        let start = &sc.produced[sc.start];
        let mut sp = pruned.produce(pruned.handle(start).unwrap());
        let mut sr = raw.produce(raw.handle(start).unwrap());
        for &op in &sc.ops {
            sp = pruned.infer(sp, set_ids[op]);
            sr = raw.infer(sr, set_ids[op]);
        }
        for (ordering, hp) in pruned.orders() {
            let hr = raw.handle(ordering).unwrap();
            prop_assert_eq!(
                pruned.satisfies(sp, hp),
                raw.satisfies(sr, hr),
                "order {:?}", ordering
            );
        }
    }

    /// Simmen's framework is *sound* (never claims an ordering that does
    /// not hold for the stream) — completeness can fail by design
    /// (non-confluent reduction, §3). Soundness is judged against the
    /// persistent-FD ground truth (all applied dependencies keep
    /// holding), which is what Simmen's per-node FD environment models —
    /// it can legitimately exceed the paper's sequential Ω semantics,
    /// e.g. `a=b` followed by `b=const` makes `a` constant.
    #[test]
    fn simmen_is_sound(sc in arb_scenario()) {
        let mut spec = InputSpec::new();
        for o in &sc.produced {
            spec.add_produced(o.clone());
        }
        for o in &sc.tested {
            spec.add_tested(o.clone());
        }
        let set_ids: Vec<_> = sc.fd_sets.iter().map(|fds| spec.add_fd_set(fds.clone())).collect();
        let fw = ofw::simmen::SimmenFramework::prepare(&spec);

        let start = &sc.produced[sc.start];
        let mut state = fw.produce(fw.key(start).unwrap());
        let mut truth = ExplicitOrderings::from_physical(start);
        let mut accumulated: Vec<Fd> = Vec::new();
        for &op in &sc.ops {
            state = fw.infer(state, set_ids[op]);
            accumulated.extend(sc.fd_sets[op].iter().cloned());
            truth.close_under(&accumulated);
        }
        for (ordering, key) in fw.orders() {
            if fw.satisfies(state, key) {
                prop_assert!(
                    truth.contains(ordering),
                    "simmen wrongly claims {:?}", ordering
                );
            }
        }
    }

    /// Domination soundness: if state A dominates state B now, then
    /// after any further operator both still agree — A keeps satisfying
    /// everything B satisfies.
    #[test]
    fn domination_is_future_proof(sc in arb_scenario(), extra_ops in proptest::collection::vec(0usize..3, 0..=3)) {
        let mut spec = InputSpec::new();
        for o in &sc.produced {
            spec.add_produced(o.clone());
        }
        for o in &sc.tested {
            spec.add_tested(o.clone());
        }
        let set_ids: Vec<_> = sc.fd_sets.iter().map(|fds| spec.add_fd_set(fds.clone())).collect();
        let fw = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();

        // Build two states: one via the op sequence, one plain.
        let start = &sc.produced[sc.start];
        let mut sa = fw.produce(fw.handle(start).unwrap());
        for &op in &sc.ops {
            sa = fw.infer(sa, set_ids[op]);
        }
        let sb = fw.produce(fw.handle(start).unwrap());
        if fw.dominates(sa, sb) {
            let mut fa = sa;
            let mut fb = sb;
            for &op in &extra_ops {
                if op < set_ids.len() {
                    fa = fw.infer(fa, set_ids[op]);
                    fb = fw.infer(fb, set_ids[op]);
                }
            }
            for (_, h) in fw.orders() {
                if fw.satisfies(fb, h) {
                    prop_assert!(fw.satisfies(fa, h), "domination violated later");
                }
            }
        }
    }
}
