//! End-to-end integration: query → extraction → both order frameworks →
//! DP plan generation, across workload families.

use ofw::core::{OrderingFramework, PruneConfig};
use ofw::plangen::{PlanGen, PlanOp};
use ofw::query::extract::ExtractOptions;
use ofw::simmen::SimmenFramework;
use ofw::workload::{q8_query, random_query, RandomQueryConfig};

/// §7's setup invariant: both order frameworks, run through the same
/// plan generator, find equally cheap plans — checked across a spread of
/// random join graphs.
#[test]
fn both_frameworks_agree_on_optimal_cost_across_seeds() {
    for n in [3usize, 5, 7] {
        for extra in 0..=2usize {
            for seed in 0..4u64 {
                let (catalog, query) = random_query(&RandomQueryConfig {
                    num_relations: n,
                    extra_edges: extra,
                    seed,
                });
                let ex = ofw::query::extract(&catalog, &query, &ExtractOptions::default());

                let ours_fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
                let ours = PlanGen::new(&catalog, &query, &ex, &ours_fw).run();

                let simmen_fw = SimmenFramework::prepare(&ex.spec);
                let simmen = PlanGen::new(&catalog, &query, &ex, &simmen_fw).run();

                let rel = (ours.cost - simmen.cost).abs() / ours.cost.max(1.0);
                assert!(
                    rel < 1e-9,
                    "n={n} extra={extra} seed={seed}: ours={} simmen={}",
                    ours.cost,
                    simmen.cost
                );
                assert!(
                    ours.stats.plans <= simmen.stats.plans,
                    "n={n} extra={extra} seed={seed}: the DFSM framework must prune \
                     at least as hard ({} vs {})",
                    ours.stats.plans,
                    simmen.stats.plans
                );
            }
        }
    }
}

/// Unpruned and pruned DFSM frameworks drive the plan generator to the
/// same optimum (pruning only removes irrelevant information).
#[test]
fn pruning_does_not_change_the_optimal_plan() {
    for seed in 0..5u64 {
        let (catalog, query) = random_query(&RandomQueryConfig {
            num_relations: 6,
            extra_edges: 1,
            seed,
        });
        let ex = ofw::query::extract(&catalog, &query, &ExtractOptions::default());
        let pruned = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
        let raw = OrderingFramework::prepare(&ex.spec, PruneConfig::none()).unwrap();
        let a = PlanGen::new(&catalog, &query, &ex, &pruned).run();
        let b = PlanGen::new(&catalog, &query, &ex, &raw).run();
        assert!(
            (a.cost - b.cost).abs() / a.cost.max(1.0) < 1e-9,
            "seed {seed}: {} vs {}",
            a.cost,
            b.cost
        );
    }
}

/// Q8 end to end: valid complete plan covering all eight relations, the
/// final operator chain honors the group-by/order-by requirement, and
/// the DFSM framework uses far less memory.
#[test]
fn q8_end_to_end() {
    let (catalog, query) = q8_query();
    let ex = ofw::query::extract(&catalog, &query, &ExtractOptions::default());
    let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
    let result = PlanGen::new(&catalog, &query, &ex, &fw).run();

    let root = result.arena.node(result.best);
    assert_eq!(
        root.mask,
        query.all_relations_set(),
        "covers all 8 relations"
    );
    assert!(result.cost.is_finite() && result.cost > 0.0);

    // The root's order state must satisfy (o_year).
    let o_year = catalog.attr("o_year");
    let h = fw
        .handle(&ofw::core::Ordering::new(vec![o_year]))
        .expect("(o_year) is interesting");
    assert!(fw.satisfies(root.state, h), "output is grouped by o_year");

    // The plan tree is well-formed: 8 leaves, 7 joins, possibly sorts.
    let mut leaves = 0;
    let mut joins = 0;
    let mut stack = vec![result.best];
    while let Some(p) = stack.pop() {
        let op = &result.arena.node(p).op;
        match op {
            PlanOp::Scan { .. } | PlanOp::IndexScan { .. } => leaves += 1,
            PlanOp::MergeJoin { .. } | PlanOp::HashJoin { .. } | PlanOp::NestedLoopJoin { .. } => {
                joins += 1
            }
            _ => {}
        }
        stack.extend(op.inputs());
    }
    assert_eq!(leaves, 8);
    assert_eq!(joins, 7);

    let simmen_fw = SimmenFramework::prepare(&ex.spec);
    let simmen = PlanGen::new(&catalog, &query, &ex, &simmen_fw).run();
    assert!(
        result.stats.memory_bytes * 2 < simmen.stats.memory_bytes,
        "DFSM memory {} should be well under half of Simmen's {}",
        result.stats.memory_bytes,
        simmen.stats.memory_bytes
    );
}

/// The prepared framework for a query is reusable across plan-generation
/// runs (the preparation step is per query, not per plan).
#[test]
fn framework_is_reusable() {
    let (catalog, query) = q8_query();
    let ex = ofw::query::extract(&catalog, &query, &ExtractOptions::default());
    let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
    let a = PlanGen::new(&catalog, &query, &ex, &fw).run();
    let b = PlanGen::new(&catalog, &query, &ex, &fw).run();
    assert_eq!(a.cost, b.cost);
    assert_eq!(a.stats.plans, b.stats.plans);
}
