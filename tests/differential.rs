//! Differential correctness harness for the vectorized executor.
//!
//! For every workload family × order-oracle arm, the DP's winning plan
//! is *executed* — morsel-driven, on real columns shaped by the
//! catalog's statistics — and compared against the canonical reference
//! plan (greedy left-deep hash joins, root-only aggregation, full
//! sorts). The two results must be equal as multisets of query-defined
//! rows ([`result_signature`]): whatever join order, interesting-order
//! trick or eager aggregate the optimizer picked, the *answer* must not
//! change. On top:
//!
//! * vectorized execution must be **byte-identical** at 1, 2 and 8 pool
//!   threads — output columns *and* deterministic counters;
//! * every intermediate plan of the winning tree must physically
//!   satisfy every ordering/grouping/head-tail property the DFSM claims
//!   for it (the vectorized twin of `tests/execution.rs`).

use ofw::catalog::{AttrId, Catalog};
use ofw::core::{OrderingFramework, PruneConfig};
use ofw::exec::{
    execute_plan, execute_serial, reference_plan, result_signature, ColTable, ExecOptions,
    ExecStats,
};
use ofw::obs::Trace;
use ofw::parallel::ThreadPool;
use ofw::plangen::{ExplicitOracle, PlanArena, PlanGen, PlanId};
use ofw::query::extract::ExtractOptions;
use ofw::query::Query;
use ofw::simmen::SimmenFramework;
use ofw::workload::{
    generate_columns, grouping_query, groupjoin_showcase_query, partialsort_showcase_query,
    q8_query, random_query, star_agg_query, star_agg_query_ordered, DataConfig,
    GroupingQueryConfig, RandomQueryConfig, StarAggConfig,
};

/// Executes the DP winner for one oracle arm and asserts its result
/// signature matches the reference arm's.
#[allow(clippy::too_many_arguments)]
fn run_arm<S: Copy>(
    arena: &PlanArena<S>,
    best: PlanId,
    catalog: &Catalog,
    query: &Query,
    data: &[Vec<Vec<i64>>],
    want: &[Vec<i64>],
    ctx: &str,
    arm: &str,
) -> (ColTable, ExecStats) {
    let (out, stats) = execute_serial(arena, best, catalog, query, data)
        .unwrap_or_else(|e| panic!("{ctx} [{arm}]: execution failed: {e}"));
    assert_eq!(
        result_signature(query, &out),
        want,
        "{ctx} [{arm}]: DP plan result diverges from the reference plan\nplan:\n{}",
        arena.render(best, &|q| catalog.relation(query.relations[q]).name.clone()),
    );
    (out, stats)
}

/// Re-executes a plan at several pool widths and asserts byte identity
/// with the serial result — columns and counters.
#[allow(clippy::too_many_arguments)]
fn assert_thread_invariant<S: Copy>(
    arena: &PlanArena<S>,
    best: PlanId,
    catalog: &Catalog,
    query: &Query,
    data: &[Vec<Vec<i64>>],
    serial: &(ColTable, ExecStats),
    opts: &ExecOptions,
    ctx: &str,
) {
    for threads in [2usize, 8] {
        let pool = ThreadPool::new(threads);
        let (out, stats) = execute_plan(
            arena,
            best,
            catalog,
            query,
            data,
            &pool,
            opts,
            &Trace::disabled(),
        )
        .unwrap_or_else(|e| panic!("{ctx}: pooled execution ({threads} threads) failed: {e}"));
        assert_eq!(
            out, serial.0,
            "{ctx}: output not byte-identical at {threads} threads"
        );
        assert_eq!(
            stats, serial.1,
            "{ctx}: counters not deterministic at {threads} threads"
        );
    }
}

/// Executes every plan in the winning tree and asserts each claimed
/// DFSM property holds physically on the vectorized stream.
fn assert_tree_properties(
    arena: &PlanArena<ofw::core::State>,
    root: PlanId,
    catalog: &Catalog,
    query: &Query,
    fw: &OrderingFramework,
    data: &[Vec<Vec<i64>>],
    ctx: &str,
) {
    let mut stack = vec![root];
    let mut seen = std::collections::HashSet::new();
    while let Some(id) = stack.pop() {
        if !seen.insert(id.0) {
            continue;
        }
        let node = arena.node(id);
        stack.extend(node.op.inputs());
        let (out, _) = execute_serial(arena, id, catalog, query, data)
            .unwrap_or_else(|e| panic!("{ctx}: intermediate {id:?} failed: {e}"));
        let covered = |attrs: &[AttrId]| attrs.iter().all(|&a| node.mask.contains(query.owner(a)));
        for (ordering, handle) in fw.orders() {
            if covered(ordering.attrs()) && fw.satisfies(node.state, handle) {
                assert!(
                    out.satisfies_ordering(ordering.attrs()),
                    "{ctx} {id:?}: claimed ordering {ordering:?} violated\n{}",
                    arena.render(id, &|q| catalog.relation(query.relations[q]).name.clone()),
                );
            }
        }
        for (grouping, handle) in fw.groupings() {
            if covered(grouping.attrs()) && fw.satisfies_grouping(node.state, handle) {
                assert!(
                    out.satisfies_grouping(grouping.attrs()),
                    "{ctx} {id:?}: claimed grouping {grouping:?} violated\n{}",
                    arena.render(id, &|q| catalog.relation(query.relations[q]).name.clone()),
                );
            }
        }
        for (pair, handle) in fw.head_tails() {
            if covered(pair.attrs()) && fw.satisfies_head_tail(node.state, handle) {
                assert!(
                    out.satisfies_head_tail(pair.head_attrs(), pair.tail_attrs()),
                    "{ctx} {id:?}: claimed head/tail {pair:?} violated\n{}",
                    arena.render(id, &|q| catalog.relation(query.relations[q]).name.clone()),
                );
            }
        }
    }
}

/// The full differential check for one query: reference execution, all
/// three oracle arms, cross-thread byte identity, intermediate property
/// checks.
fn differential_check(catalog: &Catalog, query: &Query, data_seed: u64, ctx: &str) {
    let ex = ofw::query::extract(catalog, query, &ExtractOptions::default());
    let data = generate_columns(catalog, query, &DataConfig::small(data_seed));

    let (ref_arena, ref_root) = reference_plan(query);
    let (ref_out, _) = execute_serial(&ref_arena, ref_root, catalog, query, &data)
        .unwrap_or_else(|e| panic!("{ctx}: reference plan failed: {e}"));
    let want = result_signature(query, &ref_out);
    // The reference arm must be thread-invariant too.
    let ref_serial = execute_serial(&ref_arena, ref_root, catalog, query, &data).unwrap();
    assert_thread_invariant(
        &ref_arena,
        ref_root,
        catalog,
        query,
        &data,
        &ref_serial,
        &ExecOptions::default(),
        &format!("{ctx} [reference]"),
    );

    // Arm 1: the paper's DFSM — plus determinism and property checks.
    let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
    let r = PlanGen::new(catalog, query, &ex, &fw).run();
    let serial = run_arm(&r.arena, r.best, catalog, query, &data, &want, ctx, "dfsm");
    assert_thread_invariant(
        &r.arena,
        r.best,
        catalog,
        query,
        &data,
        &serial,
        &ExecOptions::default(),
        &format!("{ctx} [dfsm]"),
    );
    assert_tree_properties(&r.arena, r.best, catalog, query, &fw, &data, ctx);

    // Arm 2: the Simmen baseline.
    let sf = SimmenFramework::prepare(&ex.spec);
    let rs = PlanGen::new(catalog, query, &ex, &sf).run();
    run_arm(
        &rs.arena, rs.best, catalog, query, &data, &want, ctx, "simmen",
    );

    // Arm 3: the explicit-set ground truth.
    let eo = ExplicitOracle::prepare(&ex.spec);
    let re = PlanGen::new(catalog, query, &ex, &eo).run();
    run_arm(
        &re.arena, re.best, catalog, query, &data, &want, ctx, "explicit",
    );
}

#[test]
fn chain_queries_agree_across_arms_and_threads() {
    for n in [3usize, 4, 5] {
        for seed in 0..4u64 {
            let (catalog, query) = random_query(&RandomQueryConfig {
                num_relations: n,
                extra_edges: 0,
                seed,
            });
            differential_check(
                &catalog,
                &query,
                seed * 31 + 5,
                &format!("chain n={n} seed={seed}"),
            );
        }
    }
}

#[test]
fn cyclic_queries_agree_across_arms_and_threads() {
    for n in [4usize, 5] {
        for seed in 0..4u64 {
            let (catalog, query) = random_query(&RandomQueryConfig {
                num_relations: n,
                extra_edges: 2,
                seed,
            });
            differential_check(
                &catalog,
                &query,
                seed * 17 + 11,
                &format!("cyclic n={n} seed={seed}"),
            );
        }
    }
}

#[test]
fn star_aggregation_queries_agree_across_arms_and_threads() {
    for dims in [2usize, 3] {
        for seed in 0..3u64 {
            let (catalog, query) = star_agg_query(&StarAggConfig {
                dimensions: dims,
                seed,
            });
            differential_check(
                &catalog,
                &query,
                seed * 13 + 2,
                &format!("star-agg dims={dims} seed={seed}"),
            );
            let (catalog, query) = star_agg_query_ordered(&StarAggConfig {
                dimensions: dims,
                seed,
            });
            differential_check(
                &catalog,
                &query,
                seed * 13 + 3,
                &format!("star-agg-ordered dims={dims} seed={seed}"),
            );
        }
    }
}

#[test]
fn grouping_queries_agree_across_arms_and_threads() {
    for n in [3usize, 4] {
        for seed in 0..4u64 {
            let (catalog, query) = grouping_query(&GroupingQueryConfig {
                num_relations: n,
                extra_edges: 0,
                seed,
            });
            differential_check(
                &catalog,
                &query,
                seed * 7 + 1,
                &format!("grouping n={n} seed={seed}"),
            );
        }
    }
}

#[test]
fn showcase_and_q8_queries_agree_across_arms_and_threads() {
    let (catalog, query) = q8_query();
    differential_check(&catalog, &query, 42, "tpch-q8");
    let (catalog, query) = groupjoin_showcase_query();
    differential_check(&catalog, &query, 43, "groupjoin-showcase");
    let (catalog, query) = partialsort_showcase_query();
    differential_check(&catalog, &query, 44, "partialsort-showcase");
}

/// Morsel-scale determinism: thousands of rows across many morsels,
/// with a deliberately small morsel size so the order-preserving merge
/// is exercised hard — still byte-identical at 1/2/8 threads.
#[test]
fn morsel_scale_execution_is_thread_invariant() {
    let (catalog, query) = star_agg_query(&StarAggConfig {
        dimensions: 3,
        seed: 9,
    });
    let data = generate_columns(
        &catalog,
        &query,
        &DataConfig {
            scale: 1.0,
            min_rows: 3_000,
            max_rows: 9_000,
            domain_cap: Some(64),
            seed: 77,
        },
    );
    let ex = ofw::query::extract(&catalog, &query, &ExtractOptions::default());
    let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
    let r = PlanGen::new(&catalog, &query, &ex, &fw).run();
    let opts = ExecOptions { morsel_rows: 512 };
    let serial = execute_plan(
        &r.arena,
        r.best,
        &catalog,
        &query,
        &data,
        &ofw::common::SerialExecutor,
        &opts,
        &Trace::disabled(),
    )
    .unwrap();
    assert!(
        serial.1.morsels > 8,
        "expected a genuinely multi-morsel execution, got {} morsels",
        serial.1.morsels
    );
    assert_thread_invariant(
        &r.arena,
        r.best,
        &catalog,
        &query,
        &data,
        &serial,
        &opts,
        "morsel-scale star-agg",
    );

    // The reference arm at the same scale, and the differential answer.
    let (ref_arena, ref_root) = reference_plan(&query);
    let (ref_out, _) = execute_serial(&ref_arena, ref_root, &catalog, &query, &data).unwrap();
    assert_eq!(
        result_signature(&query, &serial.0),
        result_signature(&query, &ref_out),
        "morsel-scale star-agg: DP plan diverges from reference"
    );
}
