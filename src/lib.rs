//! # ofw — an efficient framework for order (and grouping) optimization
//!
//! A faithful, production-quality reproduction of
//! *Neumann & Moerkotte, "An Efficient Framework for Order Optimization"*
//! (ICDE 2004), extended to the combined ordering + grouping framework of
//! the VLDB 2004 companion paper. The crate tracks *interesting orders
//! and groupings* during query optimization with a precomputed
//! deterministic finite state machine, so that during plan generation
//!
//! * testing whether a subplan satisfies a required ordering
//!   ([`OrderingFramework::satisfies`](ofw_core::OrderingFramework::satisfies)),
//! * testing whether it satisfies a required *grouping*
//!   ([`OrderingFramework::satisfies_grouping`](ofw_core::OrderingFramework::satisfies_grouping)), and
//! * inferring new logical properties when an operator adds functional
//!   dependencies ([`OrderingFramework::infer`](ofw_core::OrderingFramework::infer))
//!
//! all run in **O(1)**, and every plan node carries only a 4-byte state.
//!
//! This facade re-exports the workspace crates:
//!
//! | module | contents |
//! |--------|----------|
//! | [`core`] | the paper's contribution: NFSM/DFSM order framework |
//! | [`simmen`] | the Simmen et al. (SIGMOD'96) baseline |
//! | [`catalog`] | schema/catalog substrate (incl. a TPC-H subset) |
//! | [`query`] | query graphs + interesting-order/FD extraction |
//! | [`plangen`] | bottom-up DP plan generator exercising both frameworks |
//! | [`parallel`] | deterministic work-stealing pool + parallel DP driver |
//! | [`exec`] | morsel-driven vectorized executor + differential reference plan |
//! | [`workload`] | random join-graph workloads, TPC-R Query 8, large topologies |
//! | [`obs`] | observability: phase spans, decision telemetry, trace export |
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for the paper's running example (§5) built
//! end to end — from interesting orders and functional dependencies to the
//! DFSM of Fig. 8 and the precomputed tables of Figs. 9–10.

pub use ofw_catalog as catalog;
pub use ofw_common as common;
pub use ofw_core as core;
pub use ofw_exec as exec;
pub use ofw_obs as obs;
pub use ofw_parallel as parallel;
pub use ofw_plangen as plangen;
pub use ofw_query as query;
pub use ofw_simmen as simmen;
pub use ofw_workload as workload;
