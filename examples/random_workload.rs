//! Random join-graph workloads (paper §7, Figs. 13–14): generate a few
//! seeded random queries, optimize each under both order frameworks and
//! compare time, explored plans and memory.
//!
//! Run with: `cargo run --release --example random_workload [n] [extra] [queries]`

use ofw::core::{OrderingFramework, PruneConfig};
use ofw::plangen::PlanGen;
use ofw::query::extract::ExtractOptions;
use ofw::simmen::SimmenFramework;
use ofw::workload::{random_query, RandomQueryConfig};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(7);
    let extra: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    let queries: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(5);

    println!(
        "random queries: {n} relations, {} edges, {queries} seeds",
        n - 1 + extra
    );
    println!();
    println!(
        "{:>4} | {:>9} {:>9} | {:>9} {:>9} | {:>7} {:>9}",
        "seed", "t(ms) S", "plans S", "t(ms) O", "plans O", "%t", "%plans"
    );
    for seed in 0..queries as u64 {
        let (catalog, query) = random_query(&RandomQueryConfig {
            num_relations: n,
            extra_edges: extra,
            seed,
        });
        let ex = ofw::query::extract(&catalog, &query, &ExtractOptions::default());

        let t0 = Instant::now();
        let simmen_fw = SimmenFramework::prepare(&ex.spec);
        let simmen = PlanGen::new(&catalog, &query, &ex, &simmen_fw).run();
        let ts = t0.elapsed();

        let t0 = Instant::now();
        let ours_fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
        let ours = PlanGen::new(&catalog, &query, &ex, &ours_fw).run();
        let to = t0.elapsed();

        assert!(
            (simmen.cost - ours.cost).abs() / ours.cost.max(1.0) < 1e-9,
            "same optimal plan required (seed {seed})"
        );
        println!(
            "{:>4} | {:>9.2} {:>9} | {:>9.2} {:>9} | {:>7.2} {:>9.2}",
            seed,
            ts.as_secs_f64() * 1e3,
            simmen.stats.plans,
            to.as_secs_f64() * 1e3,
            ours.stats.plans,
            ts.as_secs_f64() / to.as_secs_f64(),
            simmen.stats.plans as f64 / ours.stats.plans as f64,
        );
    }
    println!();
    println!("S = Simmen baseline, O = DFSM framework; both always found equally cheap plans.");
}
