//! Large joins through the enumerator seam: exhaustive where possible,
//! budgeted fallback where not.
//!
//! Two walkthroughs over the `workload::large` generators:
//!
//! 1. a **50-relation cycle** — wide, but sparse: only O(n²) connected
//!    subsets exist, so both exhaustive enumerators finish. DPsize's
//!    candidate loop *considers* two orders of magnitude more pairs
//!    than it emits; DPhyp walks the join-graph neighborhoods and
//!    considers only what it emits — while producing the bit-identical
//!    plan table and winner.
//! 2. a **50-relation clique** — dense: the csg-cmp pair count is
//!    astronomically past the enumeration budget, so `Enumerator::Auto`
//!    falls back to greedy linearization + a sliding local-DP window
//!    and still plans the query end to end.
//!
//! Run with: `cargo run --release --example large_join`

use ofw::core::{OrderingFramework, PruneConfig};
use ofw::plangen::{Enumerator, PlanGen};
use ofw::query::extract::ExtractOptions;
use ofw::workload::{large_query, LargeQueryConfig, Topology};
use std::time::Instant;

fn main() {
    // ── 1. The 50-relation cycle: two exhaustive enumerators, one
    //       answer ─────────────────────────────────────────────────
    let (catalog, query) = large_query(&LargeQueryConfig {
        topology: Topology::Cycle,
        num_relations: 50,
        seed: 50,
    });
    // Lean extraction (no per-join interesting orders) keeps Pareto
    // sets narrow enough for a 50-wide sweep.
    let ex = ofw::query::extract(&catalog, &query, &ExtractOptions::lean());
    let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();

    println!("cycle-50, DFSM arm:");
    let mut reference = None;
    for e in [Enumerator::DpSize, Enumerator::DpHyp] {
        let t0 = Instant::now();
        let r = PlanGen::new(&catalog, &query, &ex, &fw).enumerator(e).run();
        println!(
            "  {:>6}: {:>8.1}ms  plans={}  pairs={}  considered={}  cost={:.3e}",
            e.name(),
            t0.elapsed().as_secs_f64() * 1e3,
            r.stats.plans,
            r.stats.pairs_emitted,
            r.stats.pairs_considered,
            r.cost,
        );
        match reference {
            None => reference = Some(r),
            Some(ref dpsize) => {
                // Not just the same optimum — the same plan table,
                // byte for byte.
                assert_eq!(r.cost.to_bits(), dpsize.cost.to_bits());
                assert_eq!(r.best, dpsize.best);
                assert_eq!(r.stats.plans, dpsize.stats.plans);
                assert_eq!(r.stats.pairs_emitted, dpsize.stats.pairs_emitted);
                println!(
                    "  -> identical plans; DPhyp skipped {} rejected candidates",
                    dpsize.stats.pairs_considered - r.stats.pairs_considered
                );
            }
        }
    }

    // ── 2. The 50-relation clique: budget trip + linearized fallback ─
    let (catalog, query) = large_query(&LargeQueryConfig {
        topology: Topology::Clique,
        num_relations: 50,
        seed: 50,
    });
    let ex = ofw::query::extract(&catalog, &query, &ExtractOptions::lean());
    let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();

    println!("\nclique-50, DFSM arm, Enumerator::Auto:");
    let t0 = Instant::now();
    let r = PlanGen::new(&catalog, &query, &ex, &fw)
        .enumerator(Enumerator::Auto)
        .run();
    assert!(r.stats.fallback, "a 50-clique must exceed the budget");
    assert_eq!(r.arena.node(r.best).mask, query.all_relations_set());
    println!(
        "  resolved={}  {:.1}ms  plans={}  pairs={}  unions={}  cost={:.3e}",
        r.stats.enumerator,
        t0.elapsed().as_secs_f64() * 1e3,
        r.stats.plans,
        r.stats.pairs_emitted,
        r.stats.unions,
        r.cost,
    );
    println!("  -> planned end to end where exhaustive enumeration cannot run");
}
