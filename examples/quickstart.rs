//! Quickstart: the paper's running example (§5), end to end.
//!
//! Interesting orders `(b)`, `(a,b)` (produced) and `(a,b,c)` (tested);
//! operators introducing `{b→c}` and `{b→d}`. The preparation step
//! builds the NFSM of Fig. 7, the DFSM of Fig. 8 and the precomputed
//! tables of Figs. 9–10; afterwards every ADT call is O(1).
//!
//! Run with: `cargo run --example quickstart`

use ofw::catalog::AttrId;
use ofw::core::{Fd, InputSpec, Ordering, OrderingFramework, PruneConfig};

fn main() {
    let [a, b, c, d] = [AttrId(0), AttrId(1), AttrId(2), AttrId(3)];
    let name = |x: AttrId| ["a", "b", "c", "d"][x.index()];

    // 1. The input (paper §5.2).
    let mut spec = InputSpec::new();
    spec.add_produced(Ordering::new(vec![b]));
    spec.add_produced(Ordering::new(vec![a, b]));
    spec.add_tested(Ordering::new(vec![a, b, c]));
    let f_bc = spec.add_fd_set(vec![Fd::functional(&[b], c)]);
    let f_bd = spec.add_fd_set(vec![Fd::functional(&[b], d)]);

    // 2.–4. The preparation phase (Fig. 3).
    let fw = OrderingFramework::prepare(&spec, PruneConfig::default()).unwrap();
    let stats = fw.stats();
    println!("== preparation (paper Fig. 3) ==");
    println!("NFSM nodes:        {}", stats.nfsm_nodes);
    println!(
        "DFSM states:       {} (Fig. 8 has 3 + our explicit empty state)",
        stats.dfsm_states
    );
    println!(
        "pruned FDs:        {} ({{b->d}} can never matter)",
        stats.pruned_fds
    );
    println!("precomputed bytes: {}", stats.precomputed_bytes);
    println!("prep time:         {:?}", stats.prep_time);
    println!();

    // The contains matrix (Fig. 9).
    println!("== contains matrix (Fig. 9) ==");
    let mut orders: Vec<(&Ordering, ofw::core::OrderHandle)> = fw.orders().collect();
    orders.sort_by_key(|(o, _)| o.attrs().to_vec());
    for state in 0..stats.dfsm_states as u32 {
        let s = ofw::core::State(state);
        let row: Vec<String> = orders
            .iter()
            .map(|&(o, h)| {
                let names: Vec<&str> = o.attrs().iter().map(|&x| name(x)).collect();
                format!("({})={}", names.join(","), u8::from(fw.satisfies(s, h)))
            })
            .collect();
        println!("state {state}: {}", row.join("  "));
    }
    println!();

    // 5.6 walkthrough: "a sort by (a,b) results in a subplan with
    // ordering 2 … after an operator which induces b→c, the ordering
    // changes to 3, which also satisfies (a,b,c)".
    println!("== plan-generation walkthrough (paper §5.6) ==");
    let h_ab = fw.handle(&Ordering::new(vec![a, b])).unwrap();
    let h_abc = fw.handle(&Ordering::new(vec![a, b, c])).unwrap();

    let s = fw.produce(h_ab);
    println!("sort by (a,b)            -> state {s:?}");
    println!("  satisfies (a,b):   {}", fw.satisfies(s, h_ab));
    println!("  satisfies (a,b,c): {}", fw.satisfies(s, h_abc));

    let s = fw.infer(s, f_bc);
    println!("apply operator {{b->c}}    -> state {s:?}");
    println!("  satisfies (a,b,c): {}", fw.satisfies(s, h_abc));

    let s2 = fw.infer(s, f_bd);
    println!("apply operator {{b->d}}    -> state {s2:?} (pruned: identity)");
    assert_eq!(s, s2);

    println!();
    println!("every call above was a single table/bit lookup — O(1), 4 bytes per plan node.");
}
