//! TPC-R Query 8 (paper §6.2 and §7): the preparation statistics with
//! and without pruning, then a full plan-generation comparison between
//! the DFSM framework and the Simmen baseline.
//!
//! Run with: `cargo run --release --example tpcr_q8`

use ofw::core::{OrderingFramework, PruneConfig};
use ofw::plangen::PlanGen;
use ofw::query::extract::ExtractOptions;
use ofw::simmen::SimmenFramework;
use ofw::workload::q8_query;
use std::time::Instant;

fn main() {
    let (catalog, query) = q8_query();
    let ex = ofw::query::extract(&catalog, &query, &ExtractOptions::default());

    println!("== TPC-R Query 8: preparation (paper §6.2) ==");
    for (label, config) in [
        ("w/o pruning", PruneConfig::none()),
        ("with pruning", PruneConfig::default()),
    ] {
        let fw = OrderingFramework::prepare(&ex.spec, config).unwrap();
        let s = fw.stats();
        println!(
            "{label:<14} NFSM {:>4} nodes  DFSM {:>3} states  {:>6.2} ms  {:>5} bytes",
            s.nfsm_nodes,
            s.dfsm_states,
            s.prep_time.as_secs_f64() * 1e3,
            s.precomputed_bytes
        );
    }
    println!("paper:         NFSM 376 -> 38, DFSM 80 -> 24, 16 ms -> 0.2 ms, 3040 -> 912 bytes");
    println!();

    println!("== TPC-R Query 8: plan generation (paper §7) ==");
    let t0 = Instant::now();
    let simmen_fw = SimmenFramework::prepare(&ex.spec);
    let simmen = PlanGen::new(&catalog, &query, &ex, &simmen_fw).run();
    let t_simmen = t0.elapsed();

    let t0 = Instant::now();
    let ours_fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
    let ours = PlanGen::new(&catalog, &query, &ex, &ours_fw).run();
    let t_ours = t0.elapsed();

    assert!(
        (simmen.cost - ours.cost).abs() / ours.cost < 1e-9,
        "both frameworks must find the same optimal plan"
    );

    println!("{:<12} {:>10} {:>10}", "", "simmen", "ours");
    println!(
        "{:<12} {:>10.2} {:>10.2}",
        "t (ms)",
        t_simmen.as_secs_f64() * 1e3,
        t_ours.as_secs_f64() * 1e3
    );
    println!(
        "{:<12} {:>10} {:>10}",
        "#Plans", simmen.stats.plans, ours.stats.plans
    );
    println!(
        "{:<12} {:>10.1} {:>10.1}",
        "Memory (KB)",
        simmen.stats.memory_bytes as f64 / 1024.0,
        ours.stats.memory_bytes as f64 / 1024.0
    );
    println!();

    println!("== winning plan ==");
    let names = |q: usize| catalog.relation(query.relations[q]).name.clone();
    print!("{}", ours.arena.render(ours.best, &names));
}
