//! The paper's §6.1 "simple query":
//!
//! ```sql
//! select * from persons, jobs
//! where persons.jobid = jobs.id and jobs.salary > 50000
//! order by jobs.id, persons.name
//! ```
//!
//! Shows the extraction step (§5.2), the NFSM/DFSM of Figs. 11–12, and
//! a full plan-generation run with the resulting plan.
//!
//! Run with: `cargo run --example simple_query`

use ofw::catalog::Catalog;
use ofw::core::{OrderingFramework, PruneConfig};
use ofw::plangen::PlanGen;
use ofw::query::extract::ExtractOptions;
use ofw::query::QueryBuilder;

fn main() {
    // Schema + index on jobs.id (as the paper assumes for (id) ∈ O_P).
    let mut catalog = Catalog::new();
    catalog.add_relation("persons", 10_000.0, &["id", "name", "jobid"]);
    catalog.add_relation("jobs", 100.0, &["id", "salary"]);
    let jobs = catalog.relation_id("jobs").unwrap();
    let jid = catalog.attr("jobs.id");
    catalog.add_index(jobs, vec![jid], true);

    let query = QueryBuilder::new(&catalog)
        .relation("persons")
        .relation("jobs")
        .join("persons.jobid", "jobs.id", 0.01)
        .filter("jobs.salary", 0.3) // salary > 50000: no FD
        .order_by(&["jobs.id", "persons.name"])
        .build();

    // §5.2: determine interesting orders + FD sets.
    let ex = ofw::query::extract(
        &catalog,
        &query,
        &ExtractOptions {
            tested_selection_orders: true,
            ..ExtractOptions::default()
        },
    );
    println!("== extraction (paper §6.1) ==");
    println!("produced interesting orders:");
    for o in ex.spec.produced() {
        println!("  {}", catalog.render_ordering(o.attrs()));
    }
    println!("tested-only interesting orders:");
    for o in ex.spec.tested() {
        println!("  {}", catalog.render_ordering(o.attrs()));
    }
    println!("FD sets:");
    for (i, s) in ex.spec.fd_sets().iter().enumerate() {
        println!("  F{i}: {:?}", s.fds());
    }
    println!();

    // Preparation: Figs. 11–12.
    let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
    println!("== FSMs (Figs. 11–12) ==");
    println!("NFSM nodes: {}", fw.stats().nfsm_nodes);
    println!("DFSM states: {}", fw.stats().dfsm_states);
    // The equation id = jobid merges the permutation states: when one
    // node is active all orderings over {id, jobid, name} prefixes hold.
    let s = fw.produce(fw.handle(&ofw::core::Ordering::new(vec![jid])).unwrap());
    let s = fw.infer(s, ex.join_fd[0]);
    let pjobid = catalog.attr("persons.jobid");
    let pname = catalog.attr("persons.name");
    for probe in [vec![jid], vec![pjobid], vec![jid, pname], vec![pjobid, jid]] {
        if let Some(h) = fw.handle(&ofw::core::Ordering::new(probe.clone())) {
            println!(
                "  after id=jobid, scan(jobs.id) satisfies {}: {}",
                catalog.render_ordering(&probe),
                fw.satisfies(s, h)
            );
        }
    }
    println!();

    // Full plan generation.
    let result = PlanGen::new(&catalog, &query, &ex, &fw).run();
    println!(
        "== winning plan (cost {:.0}, {} subplans explored) ==",
        result.cost, result.stats.plans
    );
    let names = |q: usize| catalog.relation(query.relations[q]).name.clone();
    print!("{}", result.arena.render(result.best, &names));
}
