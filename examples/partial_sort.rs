//! Partial-sort walkthrough: a `GROUP BY … ORDER BY` query whose
//! optimum swaps the root `Sort` for `HashAgg → PartialSort`, side by
//! side with the sort-only ceiling.
//!
//! The query is TPC-H-flavored "orders per customer, listed by
//! customer": `select o_custkey, count(*), sum(o_totalprice) from
//! customer, orders where o_custkey = c_custkey group by o_custkey
//! order by o_custkey` — with *no* useful index anywhere, so hash-based
//! aggregation wins the `group by`. Its output is then **grouped by the
//! 150 000-value key but unsorted**, and the head/tail machinery pays
//! off: the plan generator's one-bit `satisfies_head_tail` probe sees
//! the `order by`'s head grouping already satisfied, so the root
//! ordering is enforced by a `PartialSort` — blocks are adjacent, only
//! the within-block residue is compared, `O(n · log(n/groups))` —
//! instead of a full `O(n · log n)` `Sort`.
//!
//! Run with `cargo run --release --example partial_sort`.

use ofw::core::{OrderingFramework, PruneConfig};
use ofw::plangen::{PlanGen, PlanOp};
use ofw::query::extract::ExtractOptions;
use ofw::workload::partialsort_showcase_query;

fn main() {
    let (catalog, query) = partialsort_showcase_query();
    let ex = ofw::query::extract(&catalog, &query, &ExtractOptions::default());
    let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
    let name = |i: usize| catalog.relation(query.relations[i]).name.clone();

    let partial = PlanGen::new(&catalog, &query, &ex, &fw).run();
    let sort_only = PlanGen::new(&catalog, &query, &ex, &fw)
        .partial_sort(false)
        .run();

    println!("== orders per customer, listed by customer ==");
    println!();
    println!(
        "sort-only enforcement (cost {:.0}, {} subplans):",
        sort_only.cost, sort_only.stats.plans
    );
    print!("{}", sort_only.arena.render(sort_only.best, &name));
    println!();
    println!(
        "with the partial-sort enforcer (cost {:.0}, {} subplans):",
        partial.cost, partial.stats.plans
    );
    print!("{}", partial.arena.render(partial.best, &name));
    println!();
    println!(
        "the partial sort wins by {:.2}x",
        sort_only.cost / partial.cost
    );

    // The structural claim of the walkthrough, asserted: the winner
    // enforces the root ordering with a PartialSort over grouped
    // aggregation output (a hash aggregate or a group-join over a
    // hash-grouped probe) and contains no full Sort anywhere, while the
    // ceiling has to pay a full Sort somewhere to order the groups.
    let root = partial.arena.node(partial.best);
    let PlanOp::PartialSort { input, head, .. } = &root.op else {
        panic!("expected a PartialSort at the root");
    };
    assert!(!head.is_empty());
    assert!(matches!(
        partial.arena.node(*input).op,
        PlanOp::HashAgg { .. } | PlanOp::GroupJoin { .. }
    ));
    let contains_sort = |r: &ofw::plangen::PlanGenResult<ofw::core::State>| {
        let mut stack = vec![r.best];
        while let Some(p) = stack.pop() {
            let op = &r.arena.node(p).op;
            if matches!(op, PlanOp::Sort { .. }) {
                return true;
            }
            stack.extend(op.inputs());
        }
        false
    };
    assert!(!contains_sort(&partial), "the winner needs no full sort");
    assert!(contains_sort(&sort_only), "the ceiling pays a full sort");
    assert!(partial.cost < sort_only.cost);
    println!();
    println!("(asserted: PartialSort over grouped output vs a full Sort in the ceiling)");
}
