//! EXPLAIN walkthrough on the paper's running example (§5):
//! `select * from persons, jobs where persons.jobid = jobs.id
//!  order by jobs.id, persons.name`, with a clustered index on
//! `jobs.id`.
//!
//! The winning plan is rendered with per-node cost, cardinality and —
//! the point of the framework — the *held logical properties* at every
//! node, re-probed from each node's 4-byte DFSM state. Watch the
//! join's functional dependency widen what the root holds: the sort
//! physically produces `(jobs.id, persons.name)`, yet the root also
//! satisfies `(persons.jobid)`, inferred through `persons.jobid =
//! jobs.id`.
//!
//! The same run is repeated under a recording [`Trace`] sink to show
//! the optimizer's phase spans (extract → prepare → enumerate →
//! per-layer DP → pick_final) with their deterministic counters —
//! attaching the sink changes nothing about the plan.
//!
//! Run with `cargo run --release --example explain`.

use ofw::core::{OrderingFramework, PrepareOptions, PruneConfig};
use ofw::obs::Trace;
use ofw::plangen::PlanGen;
use ofw::query::extract::ExtractOptions;
use ofw::query::QueryBuilder;

fn main() {
    let mut catalog = ofw::catalog::Catalog::new();
    catalog.add_relation("persons", 10_000.0, &["id", "name", "jobid"]);
    catalog.add_relation("jobs", 100.0, &["id", "salary"]);
    let jobs = catalog.relation_id("jobs").unwrap();
    let jid = catalog.attr("jobs.id");
    catalog.add_index(jobs, vec![jid], true);
    let query = QueryBuilder::new(&catalog)
        .relation("persons")
        .relation("jobs")
        .join("persons.jobid", "jobs.id", 0.01)
        .order_by(&["jobs.id", "persons.name"])
        .build();

    let trace = Trace::recording();
    let ex = ofw::query::extract_traced(&catalog, &query, &ExtractOptions::default(), &trace);
    let fw = OrderingFramework::prepare_opts(
        &ex.spec,
        PruneConfig::default(),
        &PrepareOptions::default().trace(&trace),
    )
    .unwrap();
    let result = PlanGen::new(&catalog, &query, &ex, &fw).trace(&trace).run();

    println!("== explain: persons ⋈ jobs, order by (jobs.id, persons.name) ==");
    println!();
    let explain = result.explain(&catalog, &query, &ex, &fw);
    print!("{}", explain.text());
    println!();
    println!("as JSON: {}", explain.json());
    println!();
    println!("== optimizer phase spans (recording sink attached) ==");
    println!();
    print!("{}", trace.summary_tree());
    println!();
    println!(
        "phases ledger: {}",
        result
            .stats
            .phases
            .iter()
            .map(|p| p.name.as_str())
            .collect::<Vec<_>>()
            .join(" -> ")
    );
    println!(
        "decisions: kept={} dominated={} probes={} enforcers admitted={} won={}",
        result.stats.decisions.pruning.kept_total(),
        result.stats.decisions.pruning.dominated_total(),
        result.stats.decisions.probes.total(),
        result.stats.decisions.enforcers.admitted_total(),
        result.stats.decisions.enforcers.won_total(),
    );
}
