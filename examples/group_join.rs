//! Aggregation placement walkthrough: eager push-down and the fused
//! group-join against root-only aggregation, side by side.
//!
//! Two queries:
//!
//! 1. **"orders per customer"** — `select c_custkey, count(*),
//!    sum(o_totalprice) from customer, orders where o_custkey =
//!    c_custkey group by c_custkey`. The probe side (`customer`) is
//!    clustered by its unique primary key, which *is* the group key, so
//!    the top join and the final aggregation fuse into one streaming
//!    pass — a group-join — while root-only aggregation must re-hash
//!    the full 1.5M-row join output.
//! 2. **a star schema** — a ~10⁵-row fact table with fanning dimension
//!    joins and a selective group key. Here the winning move is the
//!    *eager* one: pre-aggregate the fact table below the joins, so
//!    every operator above sees thousands of rows instead of millions.
//!
//! Run with `cargo run --release --example group_join`.

use ofw::core::{OrderingFramework, PruneConfig};
use ofw::plangen::PlanGen;
use ofw::query::extract::ExtractOptions;
use ofw::workload::{groupjoin_showcase_query, star_agg_query, StarAggConfig};

fn side_by_side(title: &str, catalog: &ofw::catalog::Catalog, query: &ofw::query::Query) {
    let ex = ofw::query::extract(catalog, query, &ExtractOptions::default());
    let fw = OrderingFramework::prepare(&ex.spec, PruneConfig::default()).unwrap();
    let placed = PlanGen::new(catalog, query, &ex, &fw).run();
    let root_only = PlanGen::new(catalog, query, &ex, &fw)
        .aggregation_placement(false)
        .run();
    let name = |i: usize| catalog.relation(query.relations[i]).name.clone();

    println!("== {title} ==");
    println!();
    println!(
        "root-only aggregation (cost {:.0}, {} subplans):",
        root_only.cost, root_only.stats.plans
    );
    print!("{}", root_only.arena.render(root_only.best, &name));
    println!();
    println!(
        "with aggregation placement (cost {:.0}, {} subplans):",
        placed.cost, placed.stats.plans
    );
    print!("{}", placed.arena.render(placed.best, &name));
    println!();
    println!("placement wins by {:.2}x", root_only.cost / placed.cost);
    println!();
}

fn main() {
    let (catalog, query) = groupjoin_showcase_query();
    side_by_side(
        "orders per customer: merge-flavored group-join over the clustered probe",
        &catalog,
        &query,
    );

    // Seed 9 is a star whose fanning joins multiply the fact table ~80x
    // before the root — exactly what eager push-down sidesteps.
    let (catalog, query) = star_agg_query(&StarAggConfig {
        dimensions: 3,
        seed: 9,
    });
    side_by_side(
        "star schema: eager pre-aggregation below fanning joins",
        &catalog,
        &query,
    );
}
